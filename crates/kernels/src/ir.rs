//! The versioned plan IR: persistent [`ExecutionPlan`] artifacts.
//!
//! Acc-SpMM's economics rest on ahead-of-time preprocessing amortized
//! across many multiplies; this module extends the amortization across
//! *processes*. A finished plan serializes into a [`PlanIr`] container:
//!
//! * a schema-versioned **JSON header** (via [`spmm_common::json`]) —
//!   kernel kind, architecture, feature dimension, the operand's
//!   [`content_fingerprint`](spmm_matrix::CsrMatrix::content_fingerprint),
//!   the [`AccConfig`] binding and its hash, plus the original stage
//!   wall times;
//! * five **length-prefixed binary sections** (little-endian, each
//!   skippable without parsing — an mmap-friendly layout): the reorder
//!   permutation, the permuted CSR operand, the compressed-format blob
//!   (with pre-rounded TF32 values, reusing the `spmm-format` codecs),
//!   the balance schedule, and the compiled-kernel descriptor.
//!
//! Loading is split in two: [`PlanIr::read_from`] parses and
//! *structurally* validates the container (every section is checked
//! against the header and its own invariants before anything is
//! constructed), and [`PlanLoader`] *semantically* validates the result
//! against what the caller expects — architecture, fingerprint, kernel
//! binding — rejecting mismatches with typed
//! [`SpmmError::PlanLoad`] variants, then rehydrates a runnable
//! [`ExecutionPlan`]. The window partition is deliberately *not*
//! serialized: it rebuilds deterministically from the stored operand,
//! keeping the container smaller and removing a whole class of
//! cross-section inconsistency.

use crate::acc::AccConfig;
use crate::dispatch::{row_block, DispatchDecision};
use crate::plan::{ExecutionPlan, FormatChoice, PlanContext, RegionPlan, StageSpec, StageTiming};
use crate::{KernelKind, TcFormat};
use spmm_balance::{BalancePlan, BalanceStrategy, Segment, TbAssignment};
use spmm_common::json::Json;
use spmm_common::{IsaTier, PlanLoadError, Result, SpmmError};
use spmm_format::{io as format_io, WindowPartition};
use spmm_matrix::CsrMatrix;
use spmm_reorder::Algorithm;
use spmm_sim::{Arch, BlockTrace, CacheOp, CachePolicy, KernelDesc, PipelineKind, TbTrace};
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Container magic: "SPIR" (SpMM Plan IR).
const MAGIC: [u8; 4] = *b"SPIR";

/// Schema version this build reads and writes. Bump on any layout or
/// semantic change; loaders reject every other version (plans are cheap
/// to rebuild, so no migration machinery).
///
/// v3 added the SIMD-tier binding: an `isa` pin in the config block, an
/// `isa_tier` header field, one tier byte in the trace section, and the
/// pin in the config hash. The recorded tier is advisory — loaders
/// re-resolve it against the loading host (see [`PlanLoader::rehydrate`]).
pub const PLAN_IR_VERSION: u32 = 3;

/// Sanity cap on section and array lengths.
const CAP: u64 = 1 << 34;

// ---------------------------------------------------------------------------
// Little-endian primitives (local to keep the container self-contained).

fn put_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn put_u64(w: &mut impl Write, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn put_f64(w: &mut impl Write, v: f64) -> Result<()> {
    put_u64(w, v.to_bits())
}

fn get_u32(r: &mut impl Read) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(r: &mut impl Read) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn get_f64(r: &mut impl Read) -> Result<f64> {
    Ok(f64::from_bits(get_u64(r)?))
}

fn get_len(r: &mut impl Read, what: &str) -> Result<usize> {
    let len = get_u64(r)?;
    if len > CAP {
        return Err(SpmmError::MalformedFormat {
            detail: format!("{what} length {len} exceeds sanity cap"),
        });
    }
    Ok(len as usize)
}

fn put_u32_slice(w: &mut impl Write, v: &[u32]) -> Result<()> {
    put_u64(w, v.len() as u64)?;
    for &x in v {
        put_u32(w, x)?;
    }
    Ok(())
}

fn get_u32_vec(r: &mut impl Read, what: &str) -> Result<Vec<u32>> {
    let len = get_len(r, what)?;
    let mut v = Vec::with_capacity(len);
    for _ in 0..len {
        v.push(get_u32(r)?);
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Stable slugs for every enum the header or sections record. These are
// the *schema*, not display names — renaming a variant must not change
// its slug without a version bump.

/// Schema-stable slug for a kernel kind (file names, headers).
pub fn kind_slug(k: KernelKind) -> &'static str {
    match k {
        KernelKind::CusparseLike => "cusparse",
        KernelKind::SputnikLike => "sputnik",
        KernelKind::SparseTirLike => "sparsetir",
        KernelKind::TcGnn => "tcgnn",
        KernelKind::DtcSpmm => "dtcspmm",
        KernelKind::AccSpmm => "accspmm",
        KernelKind::Auto => "auto",
    }
}

/// Inverse of [`kind_slug`]. `"auto"` resolves even though `Auto` is
/// absent from [`KernelKind::ALL`].
pub fn kind_from_slug(s: &str) -> Option<KernelKind> {
    if s == "auto" {
        return Some(KernelKind::Auto);
    }
    KernelKind::ALL.into_iter().find(|&k| kind_slug(k) == s)
}

/// Schema-stable slug for an architecture (round-trips through
/// [`Arch::parse`]).
pub fn arch_slug(a: Arch) -> &'static str {
    match a {
        Arch::Rtx4090 => "rtx4090",
        Arch::A800 => "a800",
        Arch::H100 => "h100",
    }
}

fn algorithm_slug(a: Algorithm) -> &'static str {
    match a {
        Algorithm::Identity => "identity",
        Algorithm::Sgt => "sgt",
        Algorithm::Lsh64 => "lsh64",
        Algorithm::DtcLsh => "dtclsh",
        Algorithm::MetisLike => "metis",
        Algorithm::Louvain => "louvain",
        Algorithm::Rabbit => "rabbit",
        Algorithm::Affinity => "affinity",
    }
}

fn algorithm_from_slug(s: &str) -> Option<Algorithm> {
    Algorithm::ALL.into_iter().find(|&a| algorithm_slug(a) == s)
}

fn balance_slug(b: BalanceStrategy) -> &'static str {
    match b {
        BalanceStrategy::None => "none",
        BalanceStrategy::DtcStyle => "dtc",
        BalanceStrategy::AccAdaptive => "adaptive",
    }
}

fn balance_from_slug(s: &str) -> Option<BalanceStrategy> {
    [
        BalanceStrategy::None,
        BalanceStrategy::DtcStyle,
        BalanceStrategy::AccAdaptive,
    ]
    .into_iter()
    .find(|&b| balance_slug(b) == s)
}

fn format_slug(f: FormatChoice) -> &'static str {
    match f {
        FormatChoice::Csr => "csr",
        FormatChoice::Tcf => "tcf",
        FormatChoice::MeTcf => "metcf",
        FormatChoice::BitTcf => "bittcf",
    }
}

fn pipeline_tag(p: PipelineKind) -> u8 {
    match p {
        PipelineKind::SerialScalar => 0,
        PipelineKind::TcgnnSync => 1,
        PipelineKind::DtcDoubleBuffer => 2,
        PipelineKind::AccLeastBubble => 3,
    }
}

fn pipeline_from_tag(t: u8) -> Option<PipelineKind> {
    Some(match t {
        0 => PipelineKind::SerialScalar,
        1 => PipelineKind::TcgnnSync,
        2 => PipelineKind::DtcDoubleBuffer,
        3 => PipelineKind::AccLeastBubble,
        _ => return None,
    })
}

fn cache_op_tag(c: CacheOp) -> u8 {
    match c {
        CacheOp::Ca => 0,
        CacheOp::Cg => 1,
        CacheOp::Cs => 2,
        CacheOp::Lu => 3,
        CacheOp::Cv => 4,
        CacheOp::Wb => 5,
        CacheOp::Wt => 6,
    }
}

fn cache_op_from_tag(t: u8) -> Option<CacheOp> {
    Some(match t {
        0 => CacheOp::Ca,
        1 => CacheOp::Cg,
        2 => CacheOp::Cs,
        3 => CacheOp::Lu,
        4 => CacheOp::Cv,
        5 => CacheOp::Wb,
        6 => CacheOp::Wt,
        _ => return None,
    })
}

/// FNV-1a hash of an [`AccConfig`]'s schema-stable encoding — the
/// configuration part of a plan's on-disk identity (file names, header
/// validation). Stable across runs and builds, unlike `std::hash`.
pub fn acc_config_hash(c: &AccConfig) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(PRIME);
    };
    eat(c.use_bittcf as u8);
    for b in algorithm_slug(c.reorder).bytes() {
        eat(b);
    }
    eat(c.cache_policy as u8);
    eat(c.acc_pipeline as u8);
    for b in balance_slug(c.balance).bytes() {
        eat(b);
    }
    eat(c.symmetric_reorder as u8);
    // 0xFF = no pin; pinned tiers hash their stable code.
    eat(c.isa.map_or(0xFF, |t| t.code()));
    h
}

// ---------------------------------------------------------------------------
// The IR itself.

/// A serializable execution plan: the versioned header bindings plus
/// every stage artifact needed to rehydrate a runnable
/// [`ExecutionPlan`] without re-running the pipeline.
#[derive(Debug, Clone)]
pub struct PlanIr {
    /// Kernel strategy the plan compiles.
    pub kind: KernelKind,
    /// Architecture the balance schedule and trace were compiled for.
    pub arch: Arch,
    /// Feature dimension the plan is specialized for.
    pub feature_dim: usize,
    /// Acc ablation configuration.
    pub config: AccConfig,
    /// Fingerprint of the *unprocessed* input operand — the identity
    /// caches key plans by.
    pub input_fingerprint: u64,
    /// Fingerprint of the *stored* (possibly permuted) operand —
    /// an integrity check over the CSR section's bytes.
    pub stored_fingerprint: u64,
    /// Reorder permutation (`perm[old] = new`), if one was applied.
    pub perm: Option<Vec<u32>>,
    /// The permuted sparse operand.
    pub csr: CsrMatrix,
    /// The compressed format, values pre-rounded to TF32 (TC kernels).
    pub format: Option<TcFormat>,
    /// The balance schedule (TC kernels).
    pub balance: Option<BalancePlan>,
    /// The compiled-kernel descriptor.
    pub trace: KernelDesc,
    /// Stage wall times recorded at original build time.
    pub timings: Vec<StageTiming>,
    /// Hybrid sub-plans: one full child container per row region.
    /// Non-empty exactly for [`KernelKind::Auto`] plans.
    pub regions: Vec<RegionIr>,
    /// The dispatch decision an `Auto` plan compiled under (pinned so
    /// re-loads never re-consult a possibly newer policy).
    pub decision: Option<DispatchDecision>,
}

/// One row region of a hybrid plan: the half-open row range it covers
/// in the parent operand plus its own complete (single-kernel) plan IR.
#[derive(Debug, Clone)]
pub struct RegionIr {
    /// First parent row the region covers.
    pub row_lo: usize,
    /// One past the last parent row the region covers.
    pub row_hi: usize,
    /// The region's own plan, built on the parent's row block.
    pub ir: PlanIr,
}

impl PlanIr {
    /// Snapshot a finished plan into its serializable IR.
    pub fn from_plan(plan: &ExecutionPlan) -> PlanIr {
        PlanIr {
            kind: plan.kind(),
            arch: plan.arch(),
            feature_dim: plan.feature_dim(),
            config: *plan.config(),
            input_fingerprint: plan.input_fingerprint(),
            stored_fingerprint: plan.csr().content_fingerprint(),
            perm: plan.perm().map(|p| p.to_vec()),
            csr: plan.csr().clone(),
            format: plan.format().cloned(),
            balance: plan.balance().cloned(),
            trace: plan.compiled_trace().clone(),
            timings: plan.stage_timings().to_vec(),
            regions: plan
                .regions()
                .map(|rs| {
                    rs.iter()
                        .map(|r| RegionIr {
                            row_lo: r.row_lo,
                            row_hi: r.row_hi,
                            ir: PlanIr::from_plan(&r.plan),
                        })
                        .collect()
                })
                .unwrap_or_default(),
            decision: plan.decision().copied(),
        }
    }

    /// The format choice the stage spec implies for this binding.
    pub fn format_choice(&self) -> FormatChoice {
        StageSpec::for_kernel(self.kind, &self.config).format
    }

    /// The JSON header describing (but not containing) the artifacts.
    pub fn header_json(&self) -> Json {
        let mut config = BTreeMap::new();
        config.insert("use_bittcf".into(), Json::Bool(self.config.use_bittcf));
        config.insert(
            "reorder".into(),
            Json::Str(algorithm_slug(self.config.reorder).into()),
        );
        config.insert("cache_policy".into(), Json::Bool(self.config.cache_policy));
        config.insert("acc_pipeline".into(), Json::Bool(self.config.acc_pipeline));
        config.insert(
            "balance".into(),
            Json::Str(balance_slug(self.config.balance).into()),
        );
        config.insert(
            "symmetric_reorder".into(),
            Json::Bool(self.config.symmetric_reorder),
        );
        config.insert(
            "isa".into(),
            self.config
                .isa
                .map_or(Json::Null, |t| Json::Str(t.name().into())),
        );

        let timings: Vec<Json> = self
            .timings
            .iter()
            .map(|t| {
                let mut o = BTreeMap::new();
                o.insert("stage".into(), Json::Str(t.stage.into()));
                o.insert("seconds".into(), Json::Num(t.seconds));
                Json::Obj(o)
            })
            .collect();

        let mut h = BTreeMap::new();
        h.insert("schema_version".into(), Json::Num(PLAN_IR_VERSION as f64));
        h.insert("kind".into(), Json::Str(kind_slug(self.kind).into()));
        h.insert("arch".into(), Json::Str(arch_slug(self.arch).into()));
        h.insert("feature_dim".into(), Json::Num(self.feature_dim as f64));
        h.insert("config".into(), Json::Obj(config));
        h.insert(
            "config_hash".into(),
            Json::Str(format!("{:016x}", acc_config_hash(&self.config))),
        );
        // u64 fingerprints travel as hex strings: `Json::Num` is an f64
        // and cannot carry 64 bits exactly.
        h.insert(
            "fingerprint".into(),
            Json::Str(format!("{:016x}", self.input_fingerprint)),
        );
        h.insert(
            "stored_fingerprint".into(),
            Json::Str(format!("{:016x}", self.stored_fingerprint)),
        );
        h.insert(
            "format".into(),
            Json::Str(format_slug(self.format_choice()).into()),
        );
        h.insert(
            "isa_tier".into(),
            Json::Str(self.trace.isa_tier.name().into()),
        );
        h.insert("has_perm".into(), Json::Bool(self.perm.is_some()));
        h.insert("has_balance".into(), Json::Bool(self.balance.is_some()));
        h.insert("nrows".into(), Json::Num(self.csr.nrows() as f64));
        h.insert("ncols".into(), Json::Num(self.csr.ncols() as f64));
        h.insert("nnz".into(), Json::Num(self.csr.nnz() as f64));
        h.insert("timings".into(), Json::Arr(timings));
        h.insert("num_regions".into(), Json::Num(self.regions.len() as f64));
        h.insert(
            "decision".into(),
            self.decision.as_ref().map_or(Json::Null, |d| d.to_json()),
        );
        Json::Obj(h)
    }

    /// Serialize the container: magic, version, length-prefixed JSON
    /// header, then the five length-prefixed binary sections.
    pub fn write_to<W: Write>(&self, w: W) -> Result<()> {
        let mut w = BufWriter::new(w);
        w.write_all(&MAGIC)?;
        put_u32(&mut w, PLAN_IR_VERSION)?;

        let header = self.header_json().to_string_pretty();
        put_u64(&mut w, header.len() as u64)?;
        w.write_all(header.as_bytes())?;

        let mut section = Vec::new();
        if let Some(perm) = &self.perm {
            put_u32_slice(&mut section, perm)?;
        }
        write_section(&mut w, &section)?;

        section.clear();
        write_csr(&mut section, &self.csr)?;
        write_section(&mut w, &section)?;

        section.clear();
        match &self.format {
            Some(TcFormat::Tcf(f)) => format_io::write_tcf(&mut section, f)?,
            Some(TcFormat::MeTcf(f)) => format_io::write_metcf(&mut section, f)?,
            Some(TcFormat::BitTcf(f)) => format_io::write_bittcf(&mut section, f)?,
            None => {}
        }
        write_section(&mut w, &section)?;

        section.clear();
        if let Some(balance) = &self.balance {
            write_balance(&mut section, balance)?;
        }
        write_section(&mut w, &section)?;

        section.clear();
        write_desc(&mut section, &self.trace)?;
        write_section(&mut w, &section)?;

        section.clear();
        put_u64(&mut section, self.regions.len() as u64)?;
        for region in &self.regions {
            put_u64(&mut section, region.row_lo as u64)?;
            put_u64(&mut section, region.row_hi as u64)?;
            // Each region nests a complete child container (magic,
            // version, header, sections) so region plans validate and
            // rehydrate through exactly the same code path as
            // top-level ones.
            let child = region.ir.to_bytes()?;
            put_u64(&mut section, child.len() as u64)?;
            section.extend_from_slice(&child);
        }
        write_section(&mut w, &section)?;

        w.flush()?;
        Ok(())
    }

    /// Serialize into an owned byte buffer (the payload plan-shipping
    /// transports price and move).
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)?;
        Ok(buf)
    }

    /// Parse and structurally validate a container. Rejections are
    /// typed [`SpmmError::PlanLoad`] errors; no partially-validated
    /// artifact ever escapes.
    pub fn read_from<R: Read>(r: R) -> Result<PlanIr> {
        let mut r = BufReader::new(r);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(|e| not_plan_ir(&e))?;
        if magic != MAGIC {
            return Err(PlanLoadError::NotPlanIr {
                detail: "bad magic".into(),
            }
            .into());
        }
        let version = get_u32(&mut r).map_err(|e| not_plan_ir(&e))?;
        if version != PLAN_IR_VERSION {
            return Err(PlanLoadError::VersionMismatch {
                found: version,
                supported: PLAN_IR_VERSION,
            }
            .into());
        }

        let header_len = get_len(&mut r, "header").map_err(|e| not_plan_ir(&e))?;
        let mut header_bytes = vec![0u8; header_len];
        r.read_exact(&mut header_bytes)
            .map_err(|e| not_plan_ir(&e))?;
        let header_text = String::from_utf8(header_bytes).map_err(|e| not_plan_ir(&e))?;
        let header = Json::parse(&header_text).map_err(|e| {
            SpmmError::from(PlanLoadError::NotPlanIr {
                detail: format!("header is not JSON: {e}"),
            })
        })?;
        let hdr = Header::parse(&header)?;

        let perm_bytes = read_section(&mut r, "perm")?;
        let csr_bytes = read_section(&mut r, "csr")?;
        let format_bytes = read_section(&mut r, "format")?;
        let balance_bytes = read_section(&mut r, "balance")?;
        let trace_bytes = read_section(&mut r, "trace")?;
        let regions_bytes = read_section(&mut r, "regions")?;

        let perm = if hdr.has_perm {
            let mut pr = csr_reader(&perm_bytes);
            let p = get_u32_vec(&mut pr, "perm").map_err(|e| artifact("perm", &e))?;
            if !spmm_common::util::is_permutation(&p) {
                return Err(PlanLoadError::ArtifactInvalid {
                    section: "perm",
                    detail: "not a permutation".into(),
                }
                .into());
            }
            Some(p)
        } else {
            if !perm_bytes.is_empty() {
                return Err(PlanLoadError::ArtifactInvalid {
                    section: "perm",
                    detail: "header says no permutation but section is non-empty".into(),
                }
                .into());
            }
            None
        };

        let csr = read_csr(&mut csr_reader(&csr_bytes)).map_err(|e| artifact("csr", &e))?;
        if csr.nrows() != hdr.nrows || csr.ncols() != hdr.ncols || csr.nnz() != hdr.nnz {
            return Err(PlanLoadError::ArtifactInvalid {
                section: "csr",
                detail: "operand shape disagrees with header".into(),
            }
            .into());
        }
        if csr.content_fingerprint() != hdr.stored_fingerprint {
            return Err(PlanLoadError::ArtifactInvalid {
                section: "csr",
                detail: "stored operand fingerprint mismatch (bytes corrupted?)".into(),
            }
            .into());
        }
        if let Some(p) = &perm {
            if p.len() != csr.nrows() {
                return Err(PlanLoadError::ArtifactInvalid {
                    section: "perm",
                    detail: format!("{} entries for {} rows", p.len(), csr.nrows()),
                }
                .into());
            }
        }

        let spec = StageSpec::for_kernel(hdr.kind, &hdr.config);
        if format_slug(spec.format) != hdr.format {
            return Err(PlanLoadError::ArtifactInvalid {
                section: "format",
                detail: format!(
                    "header format '{}' disagrees with the {} stage spec",
                    hdr.format,
                    kind_slug(hdr.kind)
                ),
            }
            .into());
        }
        let format = match spec.format {
            FormatChoice::Csr => {
                if !format_bytes.is_empty() {
                    return Err(PlanLoadError::ArtifactInvalid {
                        section: "format",
                        detail: "CSR kernels carry no format blob".into(),
                    }
                    .into());
                }
                None
            }
            FormatChoice::Tcf => Some(TcFormat::Tcf(
                format_io::read_tcf(csr_reader(&format_bytes))
                    .map_err(|e| artifact("format", &e))?,
            )),
            FormatChoice::MeTcf => Some(TcFormat::MeTcf(
                format_io::read_metcf(csr_reader(&format_bytes))
                    .map_err(|e| artifact("format", &e))?,
            )),
            FormatChoice::BitTcf => Some(TcFormat::BitTcf(
                format_io::read_bittcf(csr_reader(&format_bytes))
                    .map_err(|e| artifact("format", &e))?,
            )),
        };
        if let Some(f) = &format {
            let (fr, fc) = match f {
                TcFormat::Tcf(f) => (f.nrows(), f.ncols()),
                TcFormat::MeTcf(f) => (f.nrows(), f.ncols()),
                TcFormat::BitTcf(f) => (f.nrows(), f.ncols()),
            };
            if fr != csr.nrows() || fc != csr.ncols() {
                return Err(PlanLoadError::ArtifactInvalid {
                    section: "format",
                    detail: "format dimensions disagree with the stored operand".into(),
                }
                .into());
            }
        }

        let balance = if hdr.has_balance {
            Some(
                read_balance(&mut csr_reader(&balance_bytes))
                    .map_err(|e| artifact("balance", &e))?,
            )
        } else {
            if !balance_bytes.is_empty() {
                return Err(PlanLoadError::ArtifactInvalid {
                    section: "balance",
                    detail: "header says no balance plan but section is non-empty".into(),
                }
                .into());
            }
            None
        };

        let trace = read_desc(&mut csr_reader(&trace_bytes)).map_err(|e| artifact("trace", &e))?;
        if trace.feature_dim != hdr.feature_dim {
            return Err(PlanLoadError::ArtifactInvalid {
                section: "trace",
                detail: format!(
                    "trace compiled for feature dim {}, header says {}",
                    trace.feature_dim, hdr.feature_dim
                ),
            }
            .into());
        }
        if trace.isa_tier != hdr.isa_tier {
            return Err(PlanLoadError::ArtifactInvalid {
                section: "trace",
                detail: format!(
                    "trace recorded ISA tier {}, header says {}",
                    trace.isa_tier, hdr.isa_tier
                ),
            }
            .into());
        }

        let regions = read_regions(&regions_bytes)?;
        if regions.len() != hdr.num_regions {
            return Err(PlanLoadError::ArtifactInvalid {
                section: "regions",
                detail: format!(
                    "header says {} regions, section carries {}",
                    hdr.num_regions,
                    regions.len()
                ),
            }
            .into());
        }
        if hdr.kind == KernelKind::Auto {
            validate_regions(&csr, &hdr, &regions)?;
        } else if !regions.is_empty() || hdr.decision.is_some() {
            return Err(PlanLoadError::ArtifactInvalid {
                section: "regions",
                detail: "only Auto plans carry regions or a dispatch decision".into(),
            }
            .into());
        }

        Ok(PlanIr {
            kind: hdr.kind,
            arch: hdr.arch,
            feature_dim: hdr.feature_dim,
            config: hdr.config,
            input_fingerprint: hdr.input_fingerprint,
            stored_fingerprint: hdr.stored_fingerprint,
            perm,
            csr,
            format,
            balance,
            trace,
            timings: hdr.timings,
            regions,
            decision: hdr.decision,
        })
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        self.write_to(std::fs::File::create(path)?)
    }

    /// Load (structural validation only) from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<PlanIr> {
        PlanIr::read_from(std::fs::File::open(path)?)
    }
}

fn csr_reader(bytes: &[u8]) -> std::io::Cursor<&[u8]> {
    std::io::Cursor::new(bytes)
}

/// Parse the regions section: a count followed by `(row_lo, row_hi,
/// nested child container)` triples. Each child parses through
/// [`PlanIr::read_from`], so it gets the full structural validation.
fn read_regions(bytes: &[u8]) -> Result<Vec<RegionIr>> {
    let mut r = csr_reader(bytes);
    let count = get_len(&mut r, "regions").map_err(|e| artifact("regions", &e))?;
    let mut regions = Vec::with_capacity(count);
    for _ in 0..count {
        let row_lo = get_u64(&mut r).map_err(|e| artifact("regions", &e))? as usize;
        let row_hi = get_u64(&mut r).map_err(|e| artifact("regions", &e))? as usize;
        let child = read_section(&mut r, "regions")?;
        let ir = PlanIr::read_from(csr_reader(&child)).map_err(|e| artifact("regions", &e))?;
        regions.push(RegionIr { row_lo, row_hi, ir });
    }
    let mut rest = Vec::new();
    r.read_to_end(&mut rest)?;
    if !rest.is_empty() {
        return Err(PlanLoadError::ArtifactInvalid {
            section: "regions",
            detail: format!("{} trailing bytes after the last region", rest.len()),
        }
        .into());
    }
    Ok(regions)
}

/// Cross-check an `Auto` plan's regions against the stored operand:
/// regions must tile `[0, nrows)` contiguously, every child must be a
/// concrete (non-hybrid) kernel sharing the parent's bindings, and each
/// child's input fingerprint must equal the fingerprint of the parent's
/// corresponding row block — so a tampered child cannot masquerade as a
/// region of this operand.
fn validate_regions(csr: &CsrMatrix, hdr: &Header, regions: &[RegionIr]) -> Result<()> {
    let bad = |detail: String| -> SpmmError {
        PlanLoadError::ArtifactInvalid {
            section: "regions",
            detail,
        }
        .into()
    };
    if hdr.decision.is_none() {
        return Err(bad("Auto plan without a recorded dispatch decision".into()));
    }
    if csr.nrows() > 0 && regions.is_empty() {
        return Err(bad(
            "Auto plan over a non-empty operand has no regions".into()
        ));
    }
    let mut cursor = 0usize;
    for (i, region) in regions.iter().enumerate() {
        if region.row_lo != cursor || region.row_hi <= region.row_lo {
            return Err(bad(format!(
                "region {i} covers [{}, {}) but rows are tiled up to {cursor}",
                region.row_lo, region.row_hi
            )));
        }
        if region.row_hi > csr.nrows() {
            return Err(bad(format!(
                "region {i} ends at row {} of a {}-row operand",
                region.row_hi,
                csr.nrows()
            )));
        }
        cursor = region.row_hi;
        let child = &region.ir;
        if child.kind == KernelKind::Auto || !child.regions.is_empty() {
            return Err(bad(format!("region {i} nests another hybrid plan")));
        }
        if child.arch != hdr.arch
            || child.feature_dim != hdr.feature_dim
            || child.config != hdr.config
        {
            return Err(bad(format!(
                "region {i} bindings disagree with the parent plan"
            )));
        }
        let rows = region.row_hi - region.row_lo;
        if child.csr.nrows() != rows || child.csr.ncols() != csr.ncols() {
            return Err(bad(format!(
                "region {i} operand is {}x{}, expected {}x{}",
                child.csr.nrows(),
                child.csr.ncols(),
                rows,
                csr.ncols()
            )));
        }
        let block = row_block(csr, region.row_lo, region.row_hi);
        if block.content_fingerprint() != child.input_fingerprint {
            return Err(bad(format!(
                "region {i} input fingerprint disagrees with the parent row block"
            )));
        }
    }
    if cursor != csr.nrows() {
        return Err(bad(format!(
            "regions stop at row {cursor} of a {}-row operand",
            csr.nrows()
        )));
    }
    Ok(())
}

fn not_plan_ir(e: &impl std::fmt::Display) -> SpmmError {
    PlanLoadError::NotPlanIr {
        detail: e.to_string(),
    }
    .into()
}

fn artifact(section: &'static str, e: &SpmmError) -> SpmmError {
    match e {
        // Already typed: keep the inner classification.
        SpmmError::PlanLoad(_) => e.clone(),
        _ => PlanLoadError::ArtifactInvalid {
            section,
            detail: e.to_string(),
        }
        .into(),
    }
}

fn write_section(w: &mut impl Write, bytes: &[u8]) -> Result<()> {
    put_u64(w, bytes.len() as u64)?;
    w.write_all(bytes)?;
    Ok(())
}

fn read_section(r: &mut impl Read, section: &'static str) -> Result<Vec<u8>> {
    let len = get_len(r, section).map_err(|e| artifact(section, &e))?;
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes).map_err(|e| {
        SpmmError::from(PlanLoadError::ArtifactInvalid {
            section,
            detail: format!("truncated: {e}"),
        })
    })?;
    Ok(bytes)
}

// ---------------------------------------------------------------------------
// Header parsing.

struct Header {
    kind: KernelKind,
    arch: Arch,
    feature_dim: usize,
    config: AccConfig,
    input_fingerprint: u64,
    stored_fingerprint: u64,
    format: String,
    isa_tier: IsaTier,
    has_perm: bool,
    has_balance: bool,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    timings: Vec<StageTiming>,
    num_regions: usize,
    decision: Option<DispatchDecision>,
}

fn missing(key: &str) -> SpmmError {
    PlanLoadError::NotPlanIr {
        detail: format!("header field '{key}' missing or mistyped"),
    }
    .into()
}

fn hdr_str<'a>(h: &'a Json, key: &str) -> Result<&'a str> {
    h.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| missing(key))
}

fn hdr_bool(h: &Json, key: &str) -> Result<bool> {
    match h.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(missing(key)),
    }
}

fn hdr_usize(h: &Json, key: &str) -> Result<usize> {
    h.get(key)
        .and_then(Json::as_f64)
        .filter(|v| *v >= 0.0 && v.fract() == 0.0)
        .map(|v| v as usize)
        .ok_or_else(|| missing(key))
}

fn hdr_hex(h: &Json, key: &str) -> Result<u64> {
    let s = hdr_str(h, key)?;
    u64::from_str_radix(s, 16).map_err(|_| missing(key))
}

impl Header {
    fn parse(h: &Json) -> Result<Header> {
        let schema = hdr_usize(h, "schema_version")?;
        if schema as u32 != PLAN_IR_VERSION {
            return Err(PlanLoadError::VersionMismatch {
                found: schema as u32,
                supported: PLAN_IR_VERSION,
            }
            .into());
        }
        let kind = kind_from_slug(hdr_str(h, "kind")?).ok_or_else(|| missing("kind"))?;
        let arch = Arch::parse(hdr_str(h, "arch")?).ok_or_else(|| missing("arch"))?;
        let c = h.get("config").ok_or_else(|| missing("config"))?;
        let config = AccConfig {
            use_bittcf: hdr_bool(c, "use_bittcf")?,
            reorder: algorithm_from_slug(hdr_str(c, "reorder")?)
                .ok_or_else(|| missing("config.reorder"))?,
            cache_policy: hdr_bool(c, "cache_policy")?,
            acc_pipeline: hdr_bool(c, "acc_pipeline")?,
            balance: balance_from_slug(hdr_str(c, "balance")?)
                .ok_or_else(|| missing("config.balance"))?,
            symmetric_reorder: hdr_bool(c, "symmetric_reorder")?,
            isa: match c.get("isa") {
                None | Some(Json::Null) => None,
                Some(Json::Str(s)) => {
                    Some(IsaTier::from_name(s).ok_or_else(|| missing("config.isa"))?)
                }
                Some(_) => return Err(missing("config.isa")),
            },
        };
        if hdr_hex(h, "config_hash")? != acc_config_hash(&config) {
            return Err(PlanLoadError::NotPlanIr {
                detail: "config hash disagrees with the recorded config".into(),
            }
            .into());
        }
        let timings = h
            .get("timings")
            .and_then(Json::as_array)
            .ok_or_else(|| missing("timings"))?
            .iter()
            .filter_map(|t| {
                // Span names are 'static: only the four pipeline stages
                // rehydrate; foreign entries are dropped, not errors.
                let stage = match t.get("stage").and_then(Json::as_str)? {
                    "reorder" => "reorder",
                    "format_build" => "format_build",
                    "balance" => "balance",
                    "compile" => "compile",
                    _ => return None,
                };
                Some(StageTiming {
                    stage,
                    seconds: t.get("seconds").and_then(Json::as_f64)?,
                })
            })
            .collect();
        Ok(Header {
            kind,
            arch,
            feature_dim: hdr_usize(h, "feature_dim")?,
            config,
            input_fingerprint: hdr_hex(h, "fingerprint")?,
            stored_fingerprint: hdr_hex(h, "stored_fingerprint")?,
            format: hdr_str(h, "format")?.to_string(),
            isa_tier: IsaTier::from_name(hdr_str(h, "isa_tier")?)
                .ok_or_else(|| missing("isa_tier"))?,
            has_perm: hdr_bool(h, "has_perm")?,
            has_balance: hdr_bool(h, "has_balance")?,
            nrows: hdr_usize(h, "nrows")?,
            ncols: hdr_usize(h, "ncols")?,
            nnz: hdr_usize(h, "nnz")?,
            timings,
            num_regions: hdr_usize(h, "num_regions")?,
            decision: match h.get("decision") {
                None | Some(Json::Null) => None,
                Some(j) => Some(DispatchDecision::from_json(j).map_err(|e| {
                    SpmmError::from(PlanLoadError::NotPlanIr {
                        detail: format!("header decision invalid: {e}"),
                    })
                })?),
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Section codecs (CSR, balance schedule, kernel descriptor).

fn write_csr(w: &mut impl Write, m: &CsrMatrix) -> Result<()> {
    put_u64(w, m.nrows() as u64)?;
    put_u64(w, m.ncols() as u64)?;
    put_u64(w, m.row_ptr().len() as u64)?;
    for &p in m.row_ptr() {
        put_u64(w, p as u64)?;
    }
    put_u64(w, m.nnz() as u64)?;
    for &c in m.col_idx() {
        put_u32(w, c)?;
    }
    for &v in m.values() {
        put_u32(w, v.to_bits())?;
    }
    Ok(())
}

fn read_csr(r: &mut impl Read) -> Result<CsrMatrix> {
    let nrows = get_u64(r)? as usize;
    let ncols = get_u64(r)? as usize;
    let np = get_len(r, "row_ptr")?;
    let mut row_ptr = Vec::with_capacity(np);
    for _ in 0..np {
        row_ptr.push(get_u64(r)? as usize);
    }
    let nnz = get_len(r, "col_idx")?;
    let mut col_idx = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        col_idx.push(get_u32(r)?);
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(f32::from_bits(get_u32(r)?));
    }
    // CsrMatrix::new re-validates every structural invariant.
    CsrMatrix::new(nrows, ncols, row_ptr, col_idx, values)
}

fn write_balance(w: &mut impl Write, b: &BalancePlan) -> Result<()> {
    put_u64(w, b.tbs.len() as u64)?;
    for tb in &b.tbs {
        put_u64(w, tb.segments.len() as u64)?;
        for s in &tb.segments {
            put_u32(w, s.window)?;
            put_u32(w, s.block_start)?;
            put_u32(w, s.block_end)?;
        }
    }
    put_f64(w, b.ibd)?;
    w.write_all(&[b.applied as u8])?;
    put_u64(w, b.chunk as u64)?;
    Ok(())
}

fn read_balance(r: &mut impl Read) -> Result<BalancePlan> {
    let ntbs = get_len(r, "balance tbs")?;
    let mut tbs = Vec::with_capacity(ntbs);
    for _ in 0..ntbs {
        let nsegs = get_len(r, "balance segments")?;
        let mut segments = Vec::with_capacity(nsegs);
        for _ in 0..nsegs {
            let window = get_u32(r)?;
            let block_start = get_u32(r)?;
            let block_end = get_u32(r)?;
            if block_end < block_start {
                return Err(SpmmError::MalformedFormat {
                    detail: "balance segment runs backwards".into(),
                });
            }
            segments.push(Segment {
                window,
                block_start,
                block_end,
            });
        }
        tbs.push(TbAssignment { segments });
    }
    let ibd = get_f64(r)?;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let chunk = get_u64(r)? as usize;
    Ok(BalancePlan {
        tbs,
        ibd,
        applied: flag[0] != 0,
        chunk,
    })
}

fn write_desc(w: &mut impl Write, d: &KernelDesc) -> Result<()> {
    put_u64(w, d.tbs.len() as u64)?;
    for tb in &d.tbs {
        put_u64(w, tb.blocks.len() as u64)?;
        for b in &tb.blocks {
            put_u32_slice(w, &b.b_rows)?;
            put_u32(w, b.a_bytes)?;
            put_u64(w, b.flops)?;
            put_u32(w, b.decode_ops)?;
        }
        put_u32(w, tb.c_rows)?;
        put_u32(w, tb.segments)?;
    }
    w.write_all(&[
        pipeline_tag(d.pipeline),
        cache_op_tag(d.policy.a_op),
        cache_op_tag(d.policy.b_op),
        cache_op_tag(d.policy.c_op),
        d.use_tensor_cores as u8,
    ])?;
    put_f64(w, d.mem_efficiency)?;
    put_u64(w, d.feature_dim as u64)?;
    put_u64(w, d.effective_flops)?;
    put_f64(w, d.arch_boost)?;
    w.write_all(&[d.isa_tier.code()])?;
    Ok(())
}

fn read_desc(r: &mut impl Read) -> Result<KernelDesc> {
    let ntbs = get_len(r, "trace tbs")?;
    let mut tbs = Vec::with_capacity(ntbs);
    for _ in 0..ntbs {
        let nblocks = get_len(r, "trace blocks")?;
        let mut blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            let b_rows = get_u32_vec(r, "trace b_rows")?;
            let a_bytes = get_u32(r)?;
            let flops = get_u64(r)?;
            let decode_ops = get_u32(r)?;
            blocks.push(BlockTrace {
                b_rows,
                a_bytes,
                flops,
                decode_ops,
            });
        }
        let c_rows = get_u32(r)?;
        let segments = get_u32(r)?;
        tbs.push(TbTrace {
            blocks,
            c_rows,
            segments,
        });
    }
    let mut tags = [0u8; 5];
    r.read_exact(&mut tags)?;
    let pipeline = pipeline_from_tag(tags[0]).ok_or_else(|| SpmmError::MalformedFormat {
        detail: format!("unknown pipeline tag {}", tags[0]),
    })?;
    let bad_op = |t: u8| SpmmError::MalformedFormat {
        detail: format!("unknown cache-op tag {t}"),
    };
    let policy = CachePolicy {
        a_op: cache_op_from_tag(tags[1]).ok_or_else(|| bad_op(tags[1]))?,
        b_op: cache_op_from_tag(tags[2]).ok_or_else(|| bad_op(tags[2]))?,
        c_op: cache_op_from_tag(tags[3]).ok_or_else(|| bad_op(tags[3]))?,
    };
    let mem_efficiency = get_f64(r)?;
    if !(0.0..=1.0).contains(&mem_efficiency) {
        return Err(SpmmError::MalformedFormat {
            detail: format!("memory efficiency {mem_efficiency} outside [0, 1]"),
        });
    }
    let feature_dim = get_u64(r)? as usize;
    let effective_flops = get_u64(r)?;
    let arch_boost = get_f64(r)?;
    if !arch_boost.is_finite() || arch_boost <= 0.0 {
        return Err(SpmmError::MalformedFormat {
            detail: format!("arch boost {arch_boost} not a positive finite factor"),
        });
    }
    let mut tier_byte = [0u8; 1];
    r.read_exact(&mut tier_byte)?;
    let isa_tier = IsaTier::from_code(tier_byte[0]).ok_or_else(|| SpmmError::MalformedFormat {
        detail: format!("unknown ISA tier code {}", tier_byte[0]),
    })?;
    Ok(KernelDesc {
        tbs,
        pipeline,
        policy,
        mem_efficiency,
        use_tensor_cores: tags[4] != 0,
        feature_dim,
        effective_flops,
        arch_boost,
        isa_tier,
    })
}

// ---------------------------------------------------------------------------
// The loader/validator.

/// Semantic validation + rehydration of a parsed [`PlanIr`].
///
/// The loader carries the caller's *expectations* — the architecture it
/// will execute on, the fingerprint of the operand it wants served, the
/// kernel binding — and rejects plans that don't match with typed
/// [`SpmmError::PlanLoad`] errors. Expectations are opt-in: an empty
/// loader accepts any structurally valid container (useful for
/// inspection tools like `planc`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanLoader {
    arch: Option<Arch>,
    fingerprint: Option<u64>,
    kind: Option<KernelKind>,
    feature_dim: Option<usize>,
    config: Option<AccConfig>,
}

impl PlanLoader {
    /// A loader with no expectations.
    pub fn new() -> Self {
        PlanLoader::default()
    }

    /// Require the plan to target `arch`.
    pub fn expect_arch(mut self, arch: Arch) -> Self {
        self.arch = Some(arch);
        self
    }

    /// Require the plan's input fingerprint to equal `fingerprint`.
    pub fn expect_fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = Some(fingerprint);
        self
    }

    /// Require the plan to compile kernel `kind`.
    pub fn expect_kind(mut self, kind: KernelKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Require the plan's feature dimension to equal `n`.
    pub fn expect_feature_dim(mut self, n: usize) -> Self {
        self.feature_dim = Some(n);
        self
    }

    /// Require the plan's Acc configuration to equal `config`.
    pub fn expect_config(mut self, config: AccConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Check the caller's expectations against a parsed IR.
    pub fn validate(&self, ir: &PlanIr) -> Result<()> {
        if let Some(arch) = self.arch {
            if arch != ir.arch {
                return Err(PlanLoadError::ArchMismatch {
                    plan: arch_slug(ir.arch).into(),
                    requested: arch_slug(arch).into(),
                }
                .into());
            }
        }
        if let Some(fp) = self.fingerprint {
            if fp != ir.input_fingerprint {
                return Err(PlanLoadError::FingerprintMismatch {
                    plan: format!("{:016x}", ir.input_fingerprint),
                    requested: format!("{fp:016x}"),
                }
                .into());
            }
        }
        if let Some(kind) = self.kind {
            if kind != ir.kind {
                return Err(PlanLoadError::BindingMismatch {
                    field: "kernel kind",
                    plan: kind_slug(ir.kind).into(),
                    requested: kind_slug(kind).into(),
                }
                .into());
            }
        }
        if let Some(dim) = self.feature_dim {
            if dim != ir.feature_dim {
                return Err(PlanLoadError::BindingMismatch {
                    field: "feature dim",
                    plan: ir.feature_dim.to_string(),
                    requested: dim.to_string(),
                }
                .into());
            }
        }
        if let Some(config) = self.config {
            if config != ir.config {
                return Err(PlanLoadError::BindingMismatch {
                    field: "config",
                    plan: format!("{:016x}", acc_config_hash(&ir.config)),
                    requested: format!("{:016x}", acc_config_hash(&config)),
                }
                .into());
            }
        }
        Ok(())
    }

    /// Validate and rehydrate a parsed IR into a runnable plan. The
    /// window partition rebuilds deterministically from the stored
    /// operand; format values re-round to TF32 (idempotent — saved
    /// plans already carry pre-rounded values, so execution stays
    /// bit-identical to the plan that was saved).
    pub fn rehydrate(&self, ir: PlanIr) -> Result<ExecutionPlan> {
        let _span = spmm_trace::span("plan.load");
        self.validate(&ir)?;
        let spec = StageSpec::for_kernel(ir.kind, &ir.config);
        // Hybrid children rehydrate through their own loaders, pinned
        // to the parent's bindings (structural region validation has
        // already happened in read_from).
        let regions = if ir.kind != KernelKind::Auto {
            None
        } else {
            let child_loader = PlanLoader::new()
                .expect_arch(ir.arch)
                .expect_feature_dim(ir.feature_dim)
                .expect_config(ir.config);
            let mut out = Vec::with_capacity(ir.regions.len());
            for region in &ir.regions {
                out.push(RegionPlan {
                    row_lo: region.row_lo,
                    row_hi: region.row_hi,
                    kind: region.ir.kind,
                    plan: child_loader.rehydrate(region.ir.clone())?,
                });
            }
            Some(out)
        };
        let partition = ir.format.as_ref().map(|_| WindowPartition::build(&ir.csr));
        if let Some(wp) = &partition {
            let format_blocks = match ir.format.as_ref() {
                Some(TcFormat::Tcf(f)) => f.num_tc_blocks(),
                Some(TcFormat::MeTcf(f)) => f.num_tc_blocks(),
                Some(TcFormat::BitTcf(f)) => f.num_tc_blocks(),
                None => unreachable!(),
            };
            if format_blocks != wp.num_tc_blocks() {
                return Err(PlanLoadError::ArtifactInvalid {
                    section: "format",
                    detail: "format blocks disagree with the rebuilt window partition".into(),
                }
                .into());
            }
        }
        // The recorded tier is advisory provenance: the artifact may
        // have been compiled on a different host. Re-resolve against
        // *this* host's capabilities (a config pin the host can't
        // satisfy errors exactly as it would at build time) and re-bind
        // the plan — every tier is bit-identical, so a re-bind changes
        // speed and provenance, never results.
        let isa_tier = IsaTier::resolve(ir.config.isa)?;
        let mut trace = ir.trace;
        if trace.isa_tier != isa_tier {
            spmm_trace::counter_add("plan.isa_rebinds", 1);
            trace.isa_tier = isa_tier;
        }
        let mut format = ir.format;
        match &mut format {
            Some(TcFormat::Tcf(f)) => f.preround_values_tier(isa_tier),
            Some(TcFormat::MeTcf(f)) => f.preround_values_tier(isa_tier),
            Some(TcFormat::BitTcf(f)) => f.preround_values_tier(isa_tier),
            None => {}
        }
        let ctx = PlanContext {
            kind: ir.kind,
            arch: ir.arch,
            feature_dim: ir.feature_dim,
            config: ir.config,
            spec,
            csr: ir.csr,
            input_fingerprint: ir.input_fingerprint,
            perm: ir.perm,
            partition,
            format,
            balance: ir.balance,
            trace: Some(trace),
            timings: ir.timings,
            regions,
            decision: ir.decision,
            isa_tier,
        };
        spmm_trace::counter_add("plan.loads", 1);
        Ok(ExecutionPlan::from_context(ctx))
    }

    /// Parse, validate, and rehydrate from a reader.
    pub fn read<R: Read>(&self, r: R) -> Result<ExecutionPlan> {
        self.rehydrate(PlanIr::read_from(r)?)
    }

    /// Parse, validate, and rehydrate from a file.
    pub fn load(&self, path: impl AsRef<Path>) -> Result<ExecutionPlan> {
        self.read(std::fs::File::open(path)?)
    }
}

impl ExecutionPlan {
    /// Snapshot into the serializable IR.
    pub fn to_ir(&self) -> PlanIr {
        PlanIr::from_plan(self)
    }

    /// Serialize to a plan IR file (see [`PlanIr`] for the layout).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        self.to_ir().save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::gen::uniform_random;

    fn build(kind: KernelKind) -> ExecutionPlan {
        let m = uniform_random(96, 5.0, 9);
        ExecutionPlan::build(kind, &m, Arch::A800, 32, AccConfig::full()).unwrap()
    }

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        let full = acc_config_hash(&AccConfig::full());
        assert_eq!(full, acc_config_hash(&AccConfig::full()));
        assert_ne!(full, acc_config_hash(&AccConfig::base()));
        for i in 0..5 {
            assert_ne!(
                acc_config_hash(&AccConfig::ablation_stage(i)),
                full,
                "stage {i} must hash differently from full"
            );
        }
    }

    #[test]
    fn ir_roundtrips_through_memory_for_every_kernel() {
        for kind in KernelKind::ALL {
            let plan = build(kind);
            let ir = plan.to_ir();
            let bytes = ir.to_bytes().unwrap();
            let rt = PlanIr::read_from(csr_reader(&bytes)).unwrap();
            assert_eq!(rt.kind, kind);
            assert_eq!(rt.arch, Arch::A800);
            assert_eq!(rt.input_fingerprint, plan.input_fingerprint());
            assert_eq!(rt.csr, *plan.csr());
            assert_eq!(rt.perm.as_deref(), plan.perm());
            assert_eq!(rt.trace.num_blocks(), plan.compiled_trace().num_blocks());
            assert_eq!(
                rt.trace.effective_flops,
                plan.compiled_trace().effective_flops
            );
        }
    }

    #[test]
    fn loader_rejects_mismatched_expectations() {
        let plan = build(KernelKind::AccSpmm);
        let bytes = plan.to_ir().to_bytes().unwrap();

        let e = PlanLoader::new()
            .expect_arch(Arch::H100)
            .read(csr_reader(&bytes))
            .unwrap_err();
        assert!(matches!(
            e,
            SpmmError::PlanLoad(PlanLoadError::ArchMismatch { .. })
        ));

        let e = PlanLoader::new()
            .expect_fingerprint(0xdeadbeef)
            .read(csr_reader(&bytes))
            .unwrap_err();
        assert!(matches!(
            e,
            SpmmError::PlanLoad(PlanLoadError::FingerprintMismatch { .. })
        ));

        let e = PlanLoader::new()
            .expect_kind(KernelKind::TcGnn)
            .read(csr_reader(&bytes))
            .unwrap_err();
        assert!(matches!(
            e,
            SpmmError::PlanLoad(PlanLoadError::BindingMismatch { .. })
        ));

        let e = PlanLoader::new()
            .expect_config(AccConfig::base())
            .read(csr_reader(&bytes))
            .unwrap_err();
        assert!(matches!(
            e,
            SpmmError::PlanLoad(PlanLoadError::BindingMismatch {
                field: "config",
                ..
            })
        ));

        // Matching expectations load fine.
        let loaded = PlanLoader::new()
            .expect_arch(Arch::A800)
            .expect_kind(KernelKind::AccSpmm)
            .expect_fingerprint(plan.input_fingerprint())
            .expect_feature_dim(32)
            .expect_config(AccConfig::full())
            .read(csr_reader(&bytes))
            .unwrap();
        assert_eq!(loaded.kind(), KernelKind::AccSpmm);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let e = PlanIr::read_from(csr_reader(b"nope nope nope")).unwrap_err();
        assert!(matches!(
            e,
            SpmmError::PlanLoad(PlanLoadError::NotPlanIr { .. })
        ));

        let plan = build(KernelKind::DtcSpmm);
        let mut bytes = plan.to_ir().to_bytes().unwrap();
        bytes[4] = 99; // version field
        let e = PlanIr::read_from(csr_reader(&bytes)).unwrap_err();
        assert!(matches!(
            e,
            SpmmError::PlanLoad(PlanLoadError::VersionMismatch { found: 99, .. })
        ));
    }

    #[test]
    fn rejects_truncated_containers() {
        let plan = build(KernelKind::AccSpmm);
        let bytes = plan.to_ir().to_bytes().unwrap();
        for cut in (4..bytes.len() - 1).step_by(97) {
            assert!(
                PlanIr::read_from(csr_reader(&bytes[..cut])).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_corrupted_csr_section() {
        let plan = build(KernelKind::CusparseLike);
        let ir = plan.to_ir();
        let mut bad = ir.clone();
        // Corrupt the stored fingerprint so the CSR integrity check fires.
        bad.stored_fingerprint ^= 1;
        let bytes = bad.to_bytes().unwrap();
        let e = PlanIr::read_from(csr_reader(&bytes)).unwrap_err();
        assert!(matches!(
            e,
            SpmmError::PlanLoad(PlanLoadError::ArtifactInvalid { section: "csr", .. })
        ));
    }
}
