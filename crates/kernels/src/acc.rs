//! Acc-SpMM configuration and ablation stages (Figure 15).

use spmm_balance::BalanceStrategy;
use spmm_common::IsaTier;
use spmm_reorder::Algorithm;

/// Toggles for the Acc-SpMM optimizations. `full()` enables everything
/// (the shipped kernel); the Figure-15 ablation enables them one at a
/// time on top of the DTC-SpMM-without-balancing baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccConfig {
    /// Use BitTCF (else ME-TCF) — the **BTCF** stage.
    pub use_bittcf: bool,
    /// Row-reordering algorithm — **RO** switches DTC-LSH → data-affinity.
    pub reorder: Algorithm,
    /// PTX cache-operator control (`.ca`/`.ca`/`.wt`) — the **CP** stage.
    pub cache_policy: bool,
    /// Least-bubble double-buffer pipeline (else DTC pipeline) — **PP**.
    pub acc_pipeline: bool,
    /// Balance strategy — **LB** enables the adaptive method.
    pub balance: BalanceStrategy,
    /// The paper's §6 future-work extension: permute the sparse
    /// operand's **columns** alongside its rows and the dense operand's
    /// rows with them (`(P A Pᵀ)(P B) = P (A B)`), improving dense-side
    /// cache locality beyond the shipped rows-only reorder. Off in the
    /// paper's evaluated configuration.
    pub symmetric_reorder: bool,
    /// Pin the host SIMD tier for the CPU compute core (`None` probes
    /// the best available tier at plan build). Pinning a tier the host
    /// lacks is an [`spmm_common::SpmmError::InvalidConfig`] build
    /// error. Every tier is bit-identical, so this only affects speed —
    /// and which tier gets recorded in the plan artifact.
    pub isa: Option<IsaTier>,
}

impl AccConfig {
    /// Everything on: the shipped Acc-SpMM kernel.
    pub fn full() -> Self {
        AccConfig {
            use_bittcf: true,
            reorder: Algorithm::Affinity,
            cache_policy: true,
            acc_pipeline: true,
            balance: BalanceStrategy::AccAdaptive,
            symmetric_reorder: false,
            isa: None,
        }
    }

    /// The Figure-15 baseline: DTC-SpMM *without* load balancing
    /// (ME-TCF, DTC-LSH reorder, DTC pipeline, default caching).
    pub fn base() -> Self {
        AccConfig {
            use_bittcf: false,
            reorder: Algorithm::DtcLsh,
            cache_policy: false,
            acc_pipeline: false,
            balance: BalanceStrategy::None,
            symmetric_reorder: false,
            isa: None,
        }
    }

    /// Cumulative ablation stage `i` (0 = Base, 1 = +BTCF, 2 = +RO,
    /// 3 = +CP, 4 = +PP, 5 = +LB = full).
    pub fn ablation_stage(i: usize) -> Self {
        let mut c = AccConfig::base();
        if i >= 1 {
            c.use_bittcf = true;
        }
        if i >= 2 {
            c.reorder = Algorithm::Affinity;
        }
        if i >= 3 {
            c.cache_policy = true;
        }
        if i >= 4 {
            c.acc_pipeline = true;
        }
        if i >= 5 {
            c.balance = BalanceStrategy::AccAdaptive;
        }
        c
    }

    /// Stage labels as in Figure 15.
    pub const STAGE_NAMES: [&'static str; 6] = ["Base", "+BTCF", "+RO", "+CP", "+PP", "+LB"];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_zero_is_base_and_five_is_full() {
        assert_eq!(AccConfig::ablation_stage(0), AccConfig::base());
        assert_eq!(AccConfig::ablation_stage(5), AccConfig::full());
    }

    #[test]
    fn stages_are_cumulative() {
        let s2 = AccConfig::ablation_stage(2);
        assert!(s2.use_bittcf);
        assert_eq!(s2.reorder, Algorithm::Affinity);
        assert!(!s2.cache_policy);
        assert!(!s2.acc_pipeline);
        assert_eq!(s2.balance, BalanceStrategy::None);
        let s4 = AccConfig::ablation_stage(4);
        assert!(s4.acc_pipeline && s4.cache_policy);
        assert_eq!(s4.balance, BalanceStrategy::None);
    }

    #[test]
    fn stage_names_match_count() {
        assert_eq!(AccConfig::STAGE_NAMES.len(), 6);
        assert_eq!(AccConfig::STAGE_NAMES[0], "Base");
        assert_eq!(AccConfig::STAGE_NAMES[5], "+LB");
    }
}
