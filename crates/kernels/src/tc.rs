//! Trace builders for the tensor-core kernels (TC-GNN, DTC-SpMM,
//! Acc-SpMM).
//!
//! All three share the TC-block structure (identical RowWindow squeezing)
//! but differ in bytes-per-block (format), decode cost, pipeline, cache
//! policy, and TB assignment (balance plan):
//!
//! | | A bytes / block | decode ops | pipeline | policy |
//! |---|---|---|---|---|
//! | TC-GNN | 16·nnz + 8 | 64 + 2·nnz | synchronous | default |
//! | DTC-SpMM | 6·nnz + 36 | 64 + nnz | Fig 5a | default |
//! | Acc-SpMM | 4·nnz + 44 | 64 | Fig 5b | `.ca`/`.ca`/`.wt` |

use crate::acc::AccConfig;
use crate::TcFormat;
use spmm_balance::BalancePlan;
use spmm_format::{BitTcf, MeTcf, Tcf, TILE};
use spmm_sim::{BlockTrace, CachePolicy, KernelDesc, PipelineKind, TbTrace};

/// Achieved bandwidth fractions of the TC implementations.
pub const TCGNN_MEM_EFF: f64 = 0.72;
/// DTC-SpMM with cp.async staging.
pub const DTC_MEM_EFF: f64 = 0.85;
/// Acc-SpMM with cp.async + aligned 128-bit accesses.
pub const ACC_MEM_EFF: f64 = 0.88;

/// Per-block info each TC format exposes to the trace builder.
pub(crate) struct BlockInfo {
    pub cols: Vec<u32>,
    pub nnz: u32,
}

/// Format-specific per-block costs.
#[derive(Debug, Clone, Copy)]
enum FormatCost {
    Tcf,
    MeTcf,
    BitTcf,
}

impl FormatCost {
    fn a_bytes(&self, nnz: u32) -> u32 {
        match self {
            // edgeList + edgeToColumn + edgeToRow + value per nnz, plus
            // the window-pointer share.
            FormatCost::Tcf => 16 * nnz + 8,
            // value + int8 local id per nnz, SparseAToB + TCOffset. The
            // id bytes cost 2× their size in effective traffic: byte
            // loads are sector-padded and uncoalesced on real hardware
            // (the inefficiency BitTCF's single u64 bitmap removes).
            FormatCost::MeTcf => 6 * nnz + 36,
            // value per nnz, u64 bitmap + SparseAToB + TCOffset.
            FormatCost::BitTcf => 4 * nnz + 44,
        }
    }

    fn decode_ops(&self, nnz: u32) -> u32 {
        match self {
            // Build the dense tile from edge arrays: zero-fill + two
            // lookups per nnz.
            FormatCost::Tcf => 64 + 2 * nnz,
            // Zero-fill + one scatter per nnz.
            FormatCost::MeTcf => 64 + nnz,
            // One branch-free popcount per position.
            FormatCost::BitTcf => 64,
        }
    }
}

fn strip_pad(cols: &[u32]) -> Vec<u32> {
    cols.iter().copied().filter(|&c| c != u32::MAX).collect()
}

fn bittcf_blocks(f: &BitTcf) -> Vec<BlockInfo> {
    (0..f.num_tc_blocks())
        .map(|b| BlockInfo {
            cols: strip_pad(f.block_cols(b)),
            nnz: f.block_nnz(b) as u32,
        })
        .collect()
}

fn metcf_blocks(f: &MeTcf) -> Vec<BlockInfo> {
    (0..f.num_tc_blocks())
        .map(|b| BlockInfo {
            cols: strip_pad(&f.sparse_a_to_b[b * TILE..(b + 1) * TILE]),
            nnz: f.tc_offset[b + 1] - f.tc_offset[b],
        })
        .collect()
}

fn tcf_blocks(f: &Tcf) -> Vec<BlockInfo> {
    let mut out = Vec::with_capacity(f.num_tc_blocks());
    for w in 0..f.num_windows() {
        let nblocks = f.blocks_per_window[w] as usize;
        let mut cols: Vec<Vec<u32>> = vec![Vec::new(); nblocks];
        let mut nnz = vec![0u32; nblocks];
        for k in f.window_nnz_offset[w] as usize..f.window_nnz_offset[w + 1] as usize {
            let pos = f.edge_to_column[k] as usize;
            let b = pos / TILE;
            nnz[b] += 1;
            let c = f.edge_list[k];
            if !cols[b].contains(&c) {
                cols[b].push(c);
            }
        }
        for b in 0..nblocks {
            cols[b].sort_unstable();
            out.push(BlockInfo {
                cols: std::mem::take(&mut cols[b]),
                nnz: nnz[b],
            });
        }
    }
    out
}

/// Rows a window writes back (the final window may be ragged).
fn window_rows(nrows: usize, w: usize) -> u32 {
    (nrows - (w * TILE).min(nrows)).min(TILE) as u32
}

fn build_tbs(
    infos: &[BlockInfo],
    plan: &BalancePlan,
    nrows: usize,
    feature_dim: usize,
    cost: FormatCost,
) -> Vec<TbTrace> {
    let dense_flops_per_block = 2 * (TILE * TILE * feature_dim) as u64;
    plan.tbs
        .iter()
        .map(|tb| {
            let mut blocks = Vec::with_capacity(tb.num_blocks());
            let mut c_rows = 0u32;
            for seg in &tb.segments {
                c_rows += window_rows(nrows, seg.window as usize);
                for blk in seg.block_start..seg.block_end {
                    let info = &infos[blk as usize];
                    blocks.push(BlockTrace {
                        b_rows: info.cols.clone(),
                        a_bytes: cost.a_bytes(info.nnz),
                        flops: dense_flops_per_block,
                        decode_ops: cost.decode_ops(info.nnz),
                    });
                }
            }
            TbTrace {
                blocks,
                c_rows,
                segments: tb.segments.len() as u32,
            }
        })
        .collect()
}

/// TC-GNN trace: TCF format, one TB per window, synchronous pipeline,
/// default cache behaviour.
pub fn tcgnn_trace(f: &Tcf, plan: &BalancePlan, feature_dim: usize) -> KernelDesc {
    let infos = tcf_blocks(f);
    KernelDesc {
        tbs: build_tbs(&infos, plan, f.nrows(), feature_dim, FormatCost::Tcf),
        pipeline: PipelineKind::TcgnnSync,
        policy: CachePolicy::hardware_default(),
        mem_efficiency: TCGNN_MEM_EFF,
        use_tensor_cores: true,
        feature_dim,
        effective_flops: 2 * f.nnz() as u64 * feature_dim as u64,
        arch_boost: 1.0,
        isa_tier: spmm_common::IsaTier::Scalar,
    }
}

/// DTC-SpMM trace: ME-TCF, DTC double-buffer pipeline, DTC balancing.
pub fn dtc_trace(f: &MeTcf, plan: &BalancePlan, feature_dim: usize) -> KernelDesc {
    let infos = metcf_blocks(f);
    KernelDesc {
        tbs: build_tbs(&infos, plan, f.nrows(), feature_dim, FormatCost::MeTcf),
        pipeline: PipelineKind::DtcDoubleBuffer,
        policy: CachePolicy::hardware_default(),
        mem_efficiency: DTC_MEM_EFF,
        use_tensor_cores: true,
        feature_dim,
        effective_flops: 2 * f.nnz() as u64 * feature_dim as u64,
        arch_boost: 1.0,
        isa_tier: spmm_common::IsaTier::Scalar,
    }
}

/// Acc-SpMM trace, honouring the ablation configuration.
pub fn acc_trace(
    format: &TcFormat,
    plan: &BalancePlan,
    feature_dim: usize,
    config: &AccConfig,
) -> KernelDesc {
    let (infos, nrows, nnz, cost) = match format {
        TcFormat::BitTcf(f) => (bittcf_blocks(f), f.nrows(), f.nnz(), FormatCost::BitTcf),
        TcFormat::MeTcf(f) => (metcf_blocks(f), f.nrows(), f.nnz(), FormatCost::MeTcf),
        TcFormat::Tcf(f) => (tcf_blocks(f), f.nrows(), f.nnz(), FormatCost::Tcf),
    };
    KernelDesc {
        tbs: build_tbs(&infos, plan, nrows, feature_dim, cost),
        pipeline: if config.acc_pipeline {
            PipelineKind::AccLeastBubble
        } else {
            PipelineKind::DtcDoubleBuffer
        },
        policy: if config.cache_policy {
            CachePolicy::acc_policy()
        } else {
            CachePolicy::hardware_default()
        },
        mem_efficiency: if config.cache_policy {
            ACC_MEM_EFF
        } else {
            DTC_MEM_EFF
        },
        use_tensor_cores: true,
        feature_dim,
        effective_flops: 2 * nnz as u64 * feature_dim as u64,
        arch_boost: 1.0,
        // Placeholder; the plan compile stage stamps the resolved tier.
        isa_tier: spmm_common::IsaTier::Scalar,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_balance::{plan as make_plan, BalanceStrategy, ModelParams, PerfModel};
    use spmm_matrix::gen::uniform_random;

    fn model(n: usize) -> PerfModel {
        PerfModel::new(ModelParams {
            feature_dim: n,
            bandwidth: 1935e9,
            flops: 156e12,
            num_sms: 108,
        })
    }

    #[test]
    fn all_formats_agree_on_block_infos() {
        let m = uniform_random(256, 8.0, 1);
        let bit = bittcf_blocks(&BitTcf::from_csr(&m));
        let me = metcf_blocks(&MeTcf::from_csr(&m));
        let tcf = tcf_blocks(&Tcf::from_csr(&m));
        assert_eq!(bit.len(), me.len());
        assert_eq!(bit.len(), tcf.len());
        for i in 0..bit.len() {
            assert_eq!(bit[i].nnz, me[i].nnz, "block {i}");
            assert_eq!(bit[i].nnz, tcf[i].nnz, "block {i}");
            assert_eq!(bit[i].cols, me[i].cols, "block {i}");
            assert_eq!(bit[i].cols, tcf[i].cols, "block {i}");
        }
    }

    #[test]
    fn format_cost_ordering_on_dense_blocks() {
        // At 16 nnz per block, BitTCF must be the cheapest stream.
        let nnz = 16u32;
        assert!(FormatCost::BitTcf.a_bytes(nnz) < FormatCost::MeTcf.a_bytes(nnz));
        assert!(FormatCost::MeTcf.a_bytes(nnz) < FormatCost::Tcf.a_bytes(nnz));
        assert!(FormatCost::BitTcf.decode_ops(nnz) < FormatCost::MeTcf.decode_ops(nnz));
    }

    #[test]
    fn traces_cover_all_blocks() {
        let m = uniform_random(512, 12.0, 2);
        let f = BitTcf::from_csr(&m);
        let bpw: Vec<usize> = f
            .row_window_offset
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect();
        let n = 128;
        for strat in [BalanceStrategy::None, BalanceStrategy::AccAdaptive] {
            let plan = make_plan(&bpw, strat, &model(n));
            let desc = acc_trace(&TcFormat::BitTcf(f.clone()), &plan, n, &AccConfig::full());
            let blocks: usize = desc.tbs.iter().map(|t| t.blocks.len()).sum();
            assert_eq!(blocks, f.num_tc_blocks(), "{strat:?}");
            assert_eq!(
                desc.executed_flops(),
                2 * 64 * n as u64 * f.num_tc_blocks() as u64
            );
        }
    }

    #[test]
    fn ablation_toggles_change_the_trace() {
        let m = uniform_random(256, 8.0, 3);
        let f = BitTcf::from_csr(&m);
        let bpw: Vec<usize> = f
            .row_window_offset
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect();
        let plan = make_plan(&bpw, BalanceStrategy::None, &model(128));
        let fmt = TcFormat::BitTcf(f);
        let full = acc_trace(&fmt, &plan, 128, &AccConfig::full());
        let mut cfg = AccConfig::full();
        cfg.acc_pipeline = false;
        let no_pp = acc_trace(&fmt, &plan, 128, &cfg);
        assert_eq!(full.pipeline, PipelineKind::AccLeastBubble);
        assert_eq!(no_pp.pipeline, PipelineKind::DtcDoubleBuffer);
        let mut cfg = AccConfig::full();
        cfg.cache_policy = false;
        let no_cp = acc_trace(&fmt, &plan, 128, &cfg);
        assert_eq!(no_cp.policy, CachePolicy::hardware_default());
    }
}
