//! Density-adaptive kernel dispatch: the policy behind
//! [`KernelKind::Auto`].
//!
//! A matrix is summarized into [`MatrixFeatures`] (average row length,
//! row-length coefficient of variation, feature dimension); the
//! [`DispatchPolicy`] — a first-match rule table learned offline by the
//! `autotune` binary and committed as `results/dispatch_policy.json` —
//! maps those features to a [`DispatchDecision`]: either one concrete
//! kernel for the whole matrix, or a hybrid split where each TILE-row
//! window runs the tensor-core kernel when its local density clears a
//! threshold and a scalar kernel otherwise.
//!
//! The window classifier uses *only window-local* data (the window's
//! average nnz per row against an absolute threshold), so any TILE-
//! aligned row slice of the matrix classifies its windows exactly as
//! the full matrix does. That is what lets spmm-dist pin one decision
//! at the coordinator and build per-shard hybrid plans that stay
//! bit-identical to the unsharded run (row-partition invariance).

use crate::ir::{kind_from_slug, kind_slug};
use crate::KernelKind;
use spmm_common::json::Json;
use spmm_common::{Result, SpmmError};
use spmm_format::TILE;
use spmm_matrix::CsrMatrix;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Schema version of the committed policy table. Bump on any change to
/// the rule or decision encoding; `DispatchPolicy::parse` rejects every
/// other version.
pub const POLICY_SCHEMA_VERSION: u32 = 1;

/// The committed policy table, embedded at compile time so `Auto`
/// plans build without any runtime file dependency. CI regenerates the
/// file with `autotune --check` and fails on drift, so the embedded
/// bytes and the committed artifact cannot silently diverge.
const BUILTIN_POLICY: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/dispatch_policy.json"
));

/// The dispatch-relevant summary of one (matrix, feature-dim) binding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixFeatures {
    /// Rows of the sparse operand.
    pub nrows: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Average row length (`nnz / nrows`; 0 for an empty operand).
    pub avg_l: f64,
    /// Coefficient of variation of the row lengths (stddev / mean; 0
    /// when the mean is 0) — the paper collection's type-1/type-2 axis.
    pub row_cv: f64,
    /// Dense-operand feature dimension the plan will serve.
    pub feature_dim: usize,
}

impl MatrixFeatures {
    /// Compute the features of `m` for a plan specialized to
    /// `feature_dim`.
    pub fn of(m: &CsrMatrix, feature_dim: usize) -> MatrixFeatures {
        let nrows = m.nrows();
        let nnz = m.nnz();
        let avg_l = if nrows == 0 {
            0.0
        } else {
            nnz as f64 / nrows as f64
        };
        let row_cv = if nrows == 0 || avg_l == 0.0 {
            0.0
        } else {
            let var = (0..nrows)
                .map(|r| {
                    let d = m.row_len(r) as f64 - avg_l;
                    d * d
                })
                .sum::<f64>()
                / nrows as f64;
            var.sqrt() / avg_l
        };
        MatrixFeatures {
            nrows,
            nnz,
            avg_l,
            row_cv,
            feature_dim,
        }
    }
}

/// What the policy chose for a matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchDecision {
    /// Run one concrete kernel over the whole matrix.
    Single(KernelKind),
    /// Split TILE-row windows by local density: windows whose average
    /// nnz per row is `>= threshold` run `dense`, the rest run
    /// `sparse`. Consecutive same-class windows coalesce into regions.
    Hybrid {
        /// Kernel for the dense windows (a tensor-core kind).
        dense: KernelKind,
        /// Kernel for the sparse windows (a CUDA-core kind).
        sparse: KernelKind,
        /// Window average-nnz-per-row cut between the two classes.
        threshold: f64,
    },
}

impl DispatchDecision {
    /// Every kernel kind the decision can execute.
    pub fn kinds(&self) -> Vec<KernelKind> {
        match self {
            DispatchDecision::Single(k) => vec![*k],
            DispatchDecision::Hybrid { dense, sparse, .. } => vec![*dense, *sparse],
        }
    }

    /// Reject decisions that reference [`KernelKind::Auto`] (a region
    /// must resolve to a concrete kernel) or a non-finite threshold.
    pub fn validate(&self) -> Result<()> {
        if self.kinds().contains(&KernelKind::Auto) {
            return Err(SpmmError::InvalidConfig(
                "dispatch decision must name concrete kernels, not Auto".into(),
            ));
        }
        if let DispatchDecision::Hybrid { threshold, .. } = self {
            if !threshold.is_finite() || *threshold < 0.0 {
                return Err(SpmmError::InvalidConfig(format!(
                    "hybrid threshold {threshold} must be finite and non-negative"
                )));
            }
        }
        Ok(())
    }

    /// The decision's JSON encoding (the policy file and plan-IR header
    /// schema).
    pub fn to_json(&self) -> Json {
        let mut o = BTreeMap::new();
        match self {
            DispatchDecision::Single(k) => {
                o.insert("mode".into(), Json::Str("single".into()));
                o.insert("kernel".into(), Json::Str(kind_slug(*k).into()));
            }
            DispatchDecision::Hybrid {
                dense,
                sparse,
                threshold,
            } => {
                o.insert("mode".into(), Json::Str("hybrid".into()));
                o.insert("dense".into(), Json::Str(kind_slug(*dense).into()));
                o.insert("sparse".into(), Json::Str(kind_slug(*sparse).into()));
                o.insert("threshold".into(), Json::Num(*threshold));
            }
        }
        Json::Obj(o)
    }

    /// Parse the JSON encoding produced by [`DispatchDecision::to_json`].
    pub fn from_json(j: &Json) -> Result<DispatchDecision> {
        let mode = j
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_policy("decision missing 'mode'"))?;
        let kind_of = |key: &str| -> Result<KernelKind> {
            let slug = j
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| bad_policy(&format!("decision missing '{key}'")))?;
            kind_from_slug(slug)
                .ok_or_else(|| bad_policy(&format!("unknown kernel slug '{slug}' in decision")))
        };
        let decision = match mode {
            "single" => DispatchDecision::Single(kind_of("kernel")?),
            "hybrid" => DispatchDecision::Hybrid {
                dense: kind_of("dense")?,
                sparse: kind_of("sparse")?,
                threshold: j
                    .get("threshold")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad_policy("hybrid decision missing 'threshold'"))?,
            },
            other => return Err(bad_policy(&format!("unknown decision mode '{other}'"))),
        };
        decision.validate()?;
        Ok(decision)
    }
}

fn bad_policy(detail: &str) -> SpmmError {
    SpmmError::InvalidConfig(format!("dispatch policy: {detail}"))
}

/// Optional feature bounds one policy rule matches against (min
/// inclusive, max exclusive; an absent bound always matches).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RuleBounds {
    /// Lower bound on [`MatrixFeatures::avg_l`].
    pub avgl_min: Option<f64>,
    /// Upper bound on [`MatrixFeatures::avg_l`].
    pub avgl_max: Option<f64>,
    /// Lower bound on [`MatrixFeatures::row_cv`].
    pub cv_min: Option<f64>,
    /// Upper bound on [`MatrixFeatures::row_cv`].
    pub cv_max: Option<f64>,
    /// Lower bound on [`MatrixFeatures::feature_dim`].
    pub dim_min: Option<f64>,
    /// Upper bound on [`MatrixFeatures::feature_dim`].
    pub dim_max: Option<f64>,
}

impl RuleBounds {
    fn matches(&self, f: &MatrixFeatures) -> bool {
        let within = |v: f64, min: Option<f64>, max: Option<f64>| {
            min.is_none_or(|m| v >= m) && max.is_none_or(|m| v < m)
        };
        within(f.avg_l, self.avgl_min, self.avgl_max)
            && within(f.row_cv, self.cv_min, self.cv_max)
            && within(f.feature_dim as f64, self.dim_min, self.dim_max)
    }

    /// The bounds' JSON encoding (only present bounds are emitted, so
    /// the table stays readable).
    pub fn to_json(&self) -> Json {
        let mut o = BTreeMap::new();
        let mut put = |key: &str, v: Option<f64>| {
            if let Some(v) = v {
                o.insert(key.to_string(), Json::Num(v));
            }
        };
        put("avgl_min", self.avgl_min);
        put("avgl_max", self.avgl_max);
        put("cv_min", self.cv_min);
        put("cv_max", self.cv_max);
        put("dim_min", self.dim_min);
        put("dim_max", self.dim_max);
        Json::Obj(o)
    }

    fn from_json(j: &Json) -> Result<RuleBounds> {
        let obj = j
            .as_object()
            .ok_or_else(|| bad_policy("rule 'when' must be an object"))?;
        let mut b = RuleBounds::default();
        for (key, value) in obj {
            let v = value
                .as_f64()
                .ok_or_else(|| bad_policy(&format!("bound '{key}' must be a number")))?;
            match key.as_str() {
                "avgl_min" => b.avgl_min = Some(v),
                "avgl_max" => b.avgl_max = Some(v),
                "cv_min" => b.cv_min = Some(v),
                "cv_max" => b.cv_max = Some(v),
                "dim_min" => b.dim_min = Some(v),
                "dim_max" => b.dim_max = Some(v),
                other => return Err(bad_policy(&format!("unknown bound '{other}'"))),
            }
        }
        Ok(b)
    }
}

/// One first-match-wins policy rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyRule {
    /// Feature bounds the rule applies within.
    pub when: RuleBounds,
    /// The decision taken when the bounds match.
    pub decision: DispatchDecision,
}

/// The learned feature → decision table `KernelKind::Auto` consults.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchPolicy {
    /// Rules in priority order; the first whose bounds match wins.
    pub rules: Vec<PolicyRule>,
    /// Decision when no rule matches.
    pub fallback: DispatchDecision,
}

impl DispatchPolicy {
    /// The compiled-in policy (the committed
    /// `results/dispatch_policy.json`). Panics only if the committed
    /// artifact is malformed, which the CI determinism job prevents.
    pub fn builtin() -> &'static DispatchPolicy {
        static POLICY: OnceLock<DispatchPolicy> = OnceLock::new();
        POLICY.get_or_init(|| {
            DispatchPolicy::parse(BUILTIN_POLICY)
                .expect("embedded results/dispatch_policy.json is valid (CI-gated)")
        })
    }

    /// Parse a policy table from its JSON text.
    pub fn parse(text: &str) -> Result<DispatchPolicy> {
        let j = Json::parse(text).map_err(|e| bad_policy(&format!("not JSON: {e}")))?;
        let schema = j
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad_policy("missing 'schema_version'"))?;
        if schema as u32 != POLICY_SCHEMA_VERSION {
            return Err(bad_policy(&format!(
                "schema_version {schema} unsupported (expected {POLICY_SCHEMA_VERSION})"
            )));
        }
        let rules = j
            .get("rules")
            .and_then(Json::as_array)
            .ok_or_else(|| bad_policy("missing 'rules' array"))?
            .iter()
            .map(|r| {
                Ok(PolicyRule {
                    when: RuleBounds::from_json(
                        r.get("when")
                            .ok_or_else(|| bad_policy("rule missing 'when'"))?,
                    )?,
                    decision: DispatchDecision::from_json(
                        r.get("decision")
                            .ok_or_else(|| bad_policy("rule missing 'decision'"))?,
                    )?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let fallback = DispatchDecision::from_json(
            j.get("fallback")
                .ok_or_else(|| bad_policy("missing 'fallback'"))?,
        )?;
        Ok(DispatchPolicy { rules, fallback })
    }

    /// Serialize the table back to its committed JSON form (sorted
    /// keys; `extra` lets the autotuner record provenance fields).
    pub fn to_json(&self, extra: BTreeMap<String, Json>) -> Json {
        let mut o = extra;
        o.insert(
            "schema_version".into(),
            Json::Num(POLICY_SCHEMA_VERSION as f64),
        );
        o.insert(
            "rules".into(),
            Json::Arr(
                self.rules
                    .iter()
                    .map(|r| {
                        let mut rule = BTreeMap::new();
                        rule.insert("when".into(), r.when.to_json());
                        rule.insert("decision".into(), r.decision.to_json());
                        Json::Obj(rule)
                    })
                    .collect(),
            ),
        );
        o.insert("fallback".into(), self.fallback.to_json());
        Json::Obj(o)
    }

    /// Decide for one feature vector: first matching rule, else the
    /// fallback.
    pub fn decide(&self, f: &MatrixFeatures) -> DispatchDecision {
        self.rules
            .iter()
            .find(|r| r.when.matches(f))
            .map(|r| r.decision)
            .unwrap_or(self.fallback)
    }
}

/// One contiguous run of TILE-row windows assigned to a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSpec {
    /// First row (TILE-aligned).
    pub row_lo: usize,
    /// One past the last row.
    pub row_hi: usize,
    /// The concrete kernel for the region.
    pub kind: KernelKind,
}

/// Partition `m`'s rows into kernel regions per `decision`. A
/// `Single` decision yields one region spanning every row; a `Hybrid`
/// decision classifies each TILE window by its local average nnz per
/// row (window-local data only — see the module docs for why that
/// keeps sharded builds bit-identical) and coalesces consecutive
/// same-kernel windows. Empty operands yield no regions.
pub fn region_partition(m: &CsrMatrix, decision: &DispatchDecision) -> Vec<RegionSpec> {
    let nrows = m.nrows();
    if nrows == 0 {
        return Vec::new();
    }
    let (dense, sparse, threshold) = match decision {
        DispatchDecision::Single(k) => {
            return vec![RegionSpec {
                row_lo: 0,
                row_hi: nrows,
                kind: *k,
            }]
        }
        DispatchDecision::Hybrid {
            dense,
            sparse,
            threshold,
        } => (*dense, *sparse, *threshold),
    };
    let row_ptr = m.row_ptr();
    let mut regions: Vec<RegionSpec> = Vec::new();
    for w in 0..nrows.div_ceil(TILE) {
        let lo = w * TILE;
        let hi = ((w + 1) * TILE).min(nrows);
        let nnz_w = row_ptr[hi] - row_ptr[lo];
        let avg_w = nnz_w as f64 / (hi - lo) as f64;
        let kind = if avg_w >= threshold { dense } else { sparse };
        match regions.last_mut() {
            Some(last) if last.kind == kind && last.row_hi == lo => last.row_hi = hi,
            _ => regions.push(RegionSpec {
                row_lo: lo,
                row_hi: hi,
                kind,
            }),
        }
    }
    regions
}

/// Extract rows `[lo, hi)` of `m` as a standalone CSR operand (same
/// column space). The dist crate's shard cutter has the same shape;
/// this local copy keeps `spmm-kernels` free of a dependency cycle.
pub fn row_block(m: &CsrMatrix, lo: usize, hi: usize) -> CsrMatrix {
    assert!(lo <= hi && hi <= m.nrows(), "row block out of range");
    let row_ptr = m.row_ptr();
    let base = row_ptr[lo];
    let rebased: Vec<usize> = row_ptr[lo..=hi].iter().map(|&p| p - base).collect();
    let col_idx = m.col_idx()[base..row_ptr[hi]].to_vec();
    let values = m.values()[base..row_ptr[hi]].to_vec();
    CsrMatrix::new(hi - lo, m.ncols(), rebased, col_idx, values)
        .expect("row block of a valid CSR is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::gen::uniform_random;

    #[test]
    fn builtin_policy_parses_and_decides() {
        let policy = DispatchPolicy::builtin();
        let m = uniform_random(128, 4.0, 3);
        let d = policy.decide(&MatrixFeatures::of(&m, 32));
        assert!(d.validate().is_ok());
    }

    #[test]
    fn features_capture_density_and_spread() {
        let m = uniform_random(256, 6.0, 1);
        let f = MatrixFeatures::of(&m, 64);
        assert_eq!(f.nrows, 256);
        assert_eq!(f.nnz, m.nnz());
        assert!((f.avg_l - m.nnz() as f64 / 256.0).abs() < 1e-12);
        assert!(f.row_cv >= 0.0);
        assert_eq!(f.feature_dim, 64);
    }

    #[test]
    fn rule_bounds_are_half_open_and_first_match_wins() {
        let policy = DispatchPolicy {
            rules: vec![
                PolicyRule {
                    when: RuleBounds {
                        avgl_max: Some(4.0),
                        ..Default::default()
                    },
                    decision: DispatchDecision::Single(KernelKind::CusparseLike),
                },
                PolicyRule {
                    when: RuleBounds::default(),
                    decision: DispatchDecision::Single(KernelKind::AccSpmm),
                },
            ],
            fallback: DispatchDecision::Single(KernelKind::SputnikLike),
        };
        let f = |avg_l: f64| MatrixFeatures {
            nrows: 8,
            nnz: 8,
            avg_l,
            row_cv: 0.0,
            feature_dim: 32,
        };
        assert_eq!(
            policy.decide(&f(3.9)),
            DispatchDecision::Single(KernelKind::CusparseLike)
        );
        // Upper bounds are exclusive: 4.0 falls through to the
        // catch-all second rule.
        assert_eq!(
            policy.decide(&f(4.0)),
            DispatchDecision::Single(KernelKind::AccSpmm)
        );
    }

    #[test]
    fn decision_json_roundtrips() {
        for d in [
            DispatchDecision::Single(KernelKind::DtcSpmm),
            DispatchDecision::Hybrid {
                dense: KernelKind::AccSpmm,
                sparse: KernelKind::SputnikLike,
                threshold: 6.5,
            },
        ] {
            assert_eq!(DispatchDecision::from_json(&d.to_json()).unwrap(), d);
        }
    }

    #[test]
    fn decisions_naming_auto_are_rejected() {
        assert!(DispatchDecision::Single(KernelKind::Auto)
            .validate()
            .is_err());
        assert!(DispatchDecision::Hybrid {
            dense: KernelKind::Auto,
            sparse: KernelKind::CusparseLike,
            threshold: 4.0,
        }
        .validate()
        .is_err());
        assert!(DispatchDecision::Hybrid {
            dense: KernelKind::AccSpmm,
            sparse: KernelKind::CusparseLike,
            threshold: f64::NAN,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn policy_json_roundtrips() {
        let policy = DispatchPolicy {
            rules: vec![PolicyRule {
                when: RuleBounds {
                    avgl_min: Some(2.0),
                    avgl_max: Some(32.0),
                    dim_min: Some(64.0),
                    ..Default::default()
                },
                decision: DispatchDecision::Hybrid {
                    dense: KernelKind::AccSpmm,
                    sparse: KernelKind::CusparseLike,
                    threshold: 8.0,
                },
            }],
            fallback: DispatchDecision::Single(KernelKind::AccSpmm),
        };
        let text = policy.to_json(BTreeMap::new()).to_string_pretty();
        assert_eq!(DispatchPolicy::parse(&text).unwrap(), policy);
    }

    #[test]
    fn single_decision_is_one_region() {
        let m = uniform_random(100, 3.0, 7);
        let regions = region_partition(&m, &DispatchDecision::Single(KernelKind::AccSpmm));
        assert_eq!(
            regions,
            vec![RegionSpec {
                row_lo: 0,
                row_hi: 100,
                kind: KernelKind::AccSpmm
            }]
        );
    }

    #[test]
    fn hybrid_regions_tile_the_rows_and_respect_the_threshold() {
        let m = uniform_random(96, 5.0, 11);
        let d = DispatchDecision::Hybrid {
            dense: KernelKind::AccSpmm,
            sparse: KernelKind::CusparseLike,
            threshold: 5.0,
        };
        let regions = region_partition(&m, &d);
        assert!(!regions.is_empty());
        assert_eq!(regions[0].row_lo, 0);
        assert_eq!(regions.last().unwrap().row_hi, 96);
        for pair in regions.windows(2) {
            assert_eq!(pair[0].row_hi, pair[1].row_lo, "regions are contiguous");
            assert_ne!(pair[0].kind, pair[1].kind, "adjacent regions coalesce");
        }
        for r in &regions {
            assert_eq!(r.row_lo % TILE, 0, "regions start on window boundaries");
            // Every window inside the region classifies to the region's
            // kernel — the invariant sharded builds rely on.
            for w in (r.row_lo / TILE)..r.row_hi.div_ceil(TILE) {
                let lo = w * TILE;
                let hi = ((w + 1) * TILE).min(96);
                let nnz_w = m.row_ptr()[hi] - m.row_ptr()[lo];
                let avg = nnz_w as f64 / (hi - lo) as f64;
                let kind = if avg >= 5.0 {
                    KernelKind::AccSpmm
                } else {
                    KernelKind::CusparseLike
                };
                assert_eq!(kind, r.kind);
            }
        }
    }

    #[test]
    fn row_block_slices_are_consistent() {
        let m = uniform_random(64, 4.0, 5);
        let sub = row_block(&m, 16, 40);
        assert_eq!(sub.nrows(), 24);
        assert_eq!(sub.ncols(), m.ncols());
        for r in 0..24 {
            assert_eq!(sub.row(r), m.row(16 + r), "row {r} content preserved");
        }
    }
}
