//! Trace builders for the CUDA-core kernels (cuSPARSE-, Sputnik-,
//! SparseTIR-like).
//!
//! All three compute the same FP32 result from CSR; they differ in work
//! partitioning and achieved memory efficiency:
//! * **cuSPARSE-like**: row-major TBs of 32 rows, one warp per row — the
//!   library default; no balancing, so power-law rows create stragglers;
//! * **Sputnik-like**: 1-D tiling by *non-zeros* with reverse-offset
//!   alignment — near-peak streaming bandwidth and intrinsic balance,
//!   which is exactly why it stays competitive on huge-AvgL matrices
//!   (reddit) where TC formats gain little extra density;
//! * **SparseTIR-like**: composable row buckets by length class —
//!   vectorization of the common case, between the other two.

use spmm_matrix::CsrMatrix;
use spmm_sim::{BlockTrace, CachePolicy, KernelDesc, PipelineKind, TbTrace};

/// Achieved DRAM-bandwidth fractions of the real implementations
/// (coalescing and access-granularity quality; calibrated once against
/// the paper's relative baselines and fixed).
pub const CUSPARSE_MEM_EFF: f64 = 0.78;
/// Sputnik's vectorized loads + reverse-offset alignment.
pub const SPUTNIK_MEM_EFF: f64 = 0.95;
/// SparseTIR's bucketed kernels.
pub const SPARSETIR_MEM_EFF: f64 = 0.86;

/// CSR bytes streamed per nnz: 4-byte column index + 4-byte value.
const CSR_BYTES_PER_NNZ: u32 = 8;

fn desc(tbs: Vec<TbTrace>, mem_efficiency: f64, feature_dim: usize, nnz: usize) -> KernelDesc {
    KernelDesc {
        tbs,
        pipeline: PipelineKind::SerialScalar,
        policy: CachePolicy::hardware_default(),
        mem_efficiency,
        use_tensor_cores: false,
        feature_dim,
        effective_flops: 2 * nnz as u64 * feature_dim as u64,
        arch_boost: 1.0,
        // Placeholder; the plan compile stage stamps the resolved tier.
        isa_tier: spmm_common::IsaTier::Scalar,
    }
}

/// cuSPARSE-like: TBs of 32 consecutive rows, one block per row.
pub fn cusparse_trace(m: &CsrMatrix, feature_dim: usize) -> KernelDesc {
    const ROWS_PER_TB: usize = 32;
    let mut tbs = Vec::with_capacity(m.nrows().div_ceil(ROWS_PER_TB));
    for chunk_start in (0..m.nrows()).step_by(ROWS_PER_TB) {
        let chunk_end = (chunk_start + ROWS_PER_TB).min(m.nrows());
        let mut tb = TbTrace {
            blocks: Vec::with_capacity(chunk_end - chunk_start),
            c_rows: (chunk_end - chunk_start) as u32,
            segments: 1,
        };
        for r in chunk_start..chunk_end {
            let (cols, _) = m.row(r);
            if cols.is_empty() {
                continue;
            }
            tb.blocks.push(BlockTrace {
                b_rows: cols.to_vec(),
                a_bytes: cols.len() as u32 * CSR_BYTES_PER_NNZ,
                flops: 2 * cols.len() as u64 * feature_dim as u64,
                decode_ops: 0,
            });
        }
        tbs.push(tb);
    }
    desc(tbs, CUSPARSE_MEM_EFF, feature_dim, m.nnz())
}

/// Sputnik-like: 1-D tiles of non-zeros; long rows are split so every TB
/// carries a near-equal nnz budget.
pub fn sputnik_trace(m: &CsrMatrix, feature_dim: usize) -> KernelDesc {
    /// Non-zeros a TB processes.
    const NNZ_PER_TB: usize = 256;
    /// Sub-tile granularity (vector width of the inner loop).
    const NNZ_PER_BLOCK: usize = 64;
    let mut tbs = Vec::new();
    let mut cur = TbTrace::default();
    let mut cur_nnz = 0usize;
    let mut cur_rows = 0u32;
    let flush =
        |cur: &mut TbTrace, cur_nnz: &mut usize, cur_rows: &mut u32, tbs: &mut Vec<TbTrace>| {
            if !cur.blocks.is_empty() {
                cur.c_rows = *cur_rows;
                cur.segments = (*cur_rows).max(1);
                tbs.push(std::mem::take(cur));
            }
            *cur_nnz = 0;
            *cur_rows = 0;
        };
    for r in 0..m.nrows() {
        let (cols, _) = m.row(r);
        if cols.is_empty() {
            continue;
        }
        for piece in cols.chunks(NNZ_PER_BLOCK) {
            if cur_nnz + piece.len() > NNZ_PER_TB && cur_nnz > 0 {
                flush(&mut cur, &mut cur_nnz, &mut cur_rows, &mut tbs);
            }
            if cur.blocks.is_empty() || cur_rows == 0 {
                cur_rows = 1;
            }
            cur.blocks.push(BlockTrace {
                b_rows: piece.to_vec(),
                a_bytes: piece.len() as u32 * CSR_BYTES_PER_NNZ,
                flops: 2 * piece.len() as u64 * feature_dim as u64,
                decode_ops: 0,
            });
            cur_nnz += piece.len();
        }
        cur_rows += 1;
    }
    flush(&mut cur, &mut cur_nnz, &mut cur_rows, &mut tbs);
    desc(tbs, SPUTNIK_MEM_EFF, feature_dim, m.nnz())
}

/// SparseTIR-like: rows bucketed by length class (powers of two), each
/// bucket processed by uniformly-sized TBs.
pub fn sparsetir_trace(m: &CsrMatrix, feature_dim: usize) -> KernelDesc {
    // Bucket index = ceil(log2(len)) capped; rows of similar length share
    // kernels, so TBs in a bucket are balanced.
    const NUM_BUCKETS: usize = 12;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); NUM_BUCKETS];
    for r in 0..m.nrows() {
        let len = m.row_len(r);
        if len == 0 {
            continue;
        }
        let b = (usize::BITS - (len - 1).leading_zeros()).min(NUM_BUCKETS as u32 - 1) as usize;
        buckets[b].push(r as u32);
    }
    let mut tbs = Vec::new();
    for (b, rows) in buckets.iter().enumerate() {
        // Smaller rows -> more rows per TB so work stays comparable.
        let rows_per_tb = (256usize >> b).max(1);
        for chunk in rows.chunks(rows_per_tb) {
            let mut tb = TbTrace {
                blocks: Vec::with_capacity(chunk.len()),
                c_rows: chunk.len() as u32,
                segments: chunk.len() as u32,
            };
            for &r in chunk {
                let (cols, _) = m.row(r as usize);
                tb.blocks.push(BlockTrace {
                    b_rows: cols.to_vec(),
                    a_bytes: cols.len() as u32 * CSR_BYTES_PER_NNZ,
                    flops: 2 * cols.len() as u64 * feature_dim as u64,
                    decode_ops: 0,
                });
            }
            tbs.push(tb);
        }
    }
    desc(tbs, SPARSETIR_MEM_EFF, feature_dim, m.nnz())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_matrix::gen::{rmat, uniform_random, RmatConfig};

    #[test]
    fn cusparse_covers_all_nnz() {
        let m = uniform_random(200, 6.0, 1);
        let d = cusparse_trace(&m, 64);
        let traced: usize = d
            .tbs
            .iter()
            .flat_map(|t| t.blocks.iter())
            .map(|b| b.b_rows.len())
            .sum();
        assert_eq!(traced, m.nnz());
        assert_eq!(d.effective_flops, 2 * m.nnz() as u64 * 64);
        assert_eq!(d.executed_flops(), d.effective_flops);
    }

    #[test]
    fn sputnik_tbs_are_nnz_balanced() {
        let m = rmat(
            RmatConfig {
                scale: 10,
                avg_deg: 16.0,
                ..Default::default()
            },
            2,
        );
        let d = sputnik_trace(&m, 64);
        let sizes: Vec<usize> = d
            .tbs
            .iter()
            .map(|t| t.blocks.iter().map(|b| b.b_rows.len()).sum())
            .collect();
        let max = *sizes.iter().max().unwrap();
        assert!(max <= 256 + 64, "TB nnz cap respected: {max}");
        // Compare against cuSPARSE's row-major imbalance.
        let dc = cusparse_trace(&m, 64);
        let csizes: Vec<usize> = dc
            .tbs
            .iter()
            .map(|t| t.blocks.iter().map(|b| b.b_rows.len()).sum())
            .collect();
        let cmax = *csizes.iter().max().unwrap();
        let cmean = csizes.iter().sum::<usize>() as f64 / csizes.len() as f64;
        let smean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            (max as f64 / smean) < (cmax as f64 / cmean),
            "sputnik more balanced"
        );
    }

    #[test]
    fn sparsetir_buckets_cover_everything() {
        let m = rmat(
            RmatConfig {
                scale: 9,
                avg_deg: 8.0,
                ..Default::default()
            },
            3,
        );
        let d = sparsetir_trace(&m, 32);
        let traced: usize = d
            .tbs
            .iter()
            .flat_map(|t| t.blocks.iter())
            .map(|b| b.b_rows.len())
            .sum();
        assert_eq!(traced, m.nnz());
    }

    #[test]
    fn mem_efficiency_ordering() {
        const { assert!(SPUTNIK_MEM_EFF > SPARSETIR_MEM_EFF) };
        const { assert!(SPARSETIR_MEM_EFF > CUSPARSE_MEM_EFF) };
    }
}
