//! Reusable execution buffers for the zero-allocation multiply path.

use crate::plan::ExecutionPlan;
use spmm_format::TileScratch;
use spmm_matrix::DenseMatrix;

/// Caller-owned buffer pool for [`crate::PreparedKernel::execute_into`]:
/// holds the TC tile scratch plus the staging matrices the permuted
/// kernels need (row-permuted B in symmetric mode, pre-scatter C when a
/// row permutation must be undone). Buffers grow on first use and are
/// reused on every subsequent call, so steady-state multiplies allocate
/// nothing — the pattern iterative solvers and GNN training loops live
/// in.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    pub(crate) tiles: TileScratch,
    pub(crate) staging_b: Option<DenseMatrix>,
    pub(crate) staging_c: Option<DenseMatrix>,
}

impl Workspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A workspace pre-sized for a plan's feature dimension (avoids
    /// even the first-call growth on the tile scratch).
    pub fn for_plan(plan: &ExecutionPlan) -> Self {
        Workspace {
            tiles: TileScratch::with_feature_dim(plan.feature_dim()),
            staging_b: None,
            staging_c: None,
        }
    }
}

/// Reuse `slot` if it already has the right shape, else (re)allocate.
pub(crate) fn ensure_staging(
    slot: &mut Option<DenseMatrix>,
    nrows: usize,
    ncols: usize,
) -> &mut DenseMatrix {
    let fits = slot
        .as_ref()
        .is_some_and(|m| m.nrows() == nrows && m.ncols() == ncols);
    if !fits {
        *slot = Some(DenseMatrix::zeros(nrows, ncols));
        spmm_trace::counter_add("workspace.staging_allocs", 1);
    } else {
        spmm_trace::counter_add("workspace.staging_reuses", 1);
    }
    slot.as_mut().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_is_reused_when_shape_matches() {
        let mut slot = None;
        {
            let m = ensure_staging(&mut slot, 4, 3);
            m.set(0, 0, 7.0);
        }
        let m2 = ensure_staging(&mut slot, 4, 3);
        assert_eq!(m2.get(0, 0), 7.0, "same buffer came back");
        let m3 = ensure_staging(&mut slot, 5, 3);
        assert_eq!(m3.nrows(), 5);
        assert_eq!(m3.get(0, 0), 0.0, "shape change reallocates");
    }
}
