//! Reusable execution buffers for the zero-allocation multiply path.

use crate::plan::ExecutionPlan;
use spmm_format::{BStage, TileScratch};
use spmm_matrix::DenseMatrix;

/// Caller-owned buffer pool for [`crate::PreparedKernel::execute_into`]:
/// holds the TC tile scratch (which owns the TF32 pre-rounded B stage),
/// the per-RHS stages of the batched path, plus the staging matrices the
/// permuted kernels need (row-permuted B in symmetric mode, pre-scatter
/// C when a row permutation must be undone). Buffers grow on first use
/// and are reused on every subsequent call, so steady-state multiplies
/// allocate nothing — the pattern iterative solvers and GNN training
/// loops live in.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    pub(crate) tiles: TileScratch,
    pub(crate) batch_stages: Vec<BStage>,
    pub(crate) staging_b: Option<DenseMatrix>,
    pub(crate) staging_c: Option<DenseMatrix>,
    pub(crate) region_scratch: Vec<RegionScratch>,
}

/// Per-region buffers of the hybrid (`KernelKind::Auto`) path: each
/// region's sub-plan gets its own nested workspace plus a staging
/// output sized to the region's row count. Like every other workspace
/// buffer these grow on first use and are reused afterwards, so hybrid
/// steady-state multiplies allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct RegionScratch {
    pub(crate) ws: Workspace,
    pub(crate) out: Option<DenseMatrix>,
}

impl Workspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A workspace pre-sized for a plan's feature dimension and operand
    /// shape (avoids even the first-call growth on the tile scratch and
    /// the pre-rounded B stage).
    pub fn for_plan(plan: &ExecutionPlan) -> Self {
        let mut tiles = TileScratch::with_feature_dim(plan.feature_dim());
        tiles.reserve_stage(plan.csr().ncols(), plan.feature_dim());
        Workspace {
            tiles,
            batch_stages: Vec::new(),
            staging_b: None,
            staging_c: None,
            region_scratch: Vec::new(),
        }
    }

    /// The per-region scratch list, grown to at least `n` entries.
    pub(crate) fn region_scratch_mut(&mut self, n: usize) -> &mut [RegionScratch] {
        if self.region_scratch.len() < n {
            self.region_scratch.resize_with(n, RegionScratch::default);
        }
        &mut self.region_scratch[..n]
    }

    /// Pre-size the TF32 B stage for an `nrows × ncols` operand
    /// (avoids the first-call growth for callers that know the operand
    /// shape up front, and gives paged-allocator tests a deterministic
    /// way to grow a workspace's footprint).
    pub fn reserve_staging(&mut self, nrows: usize, ncols: usize) {
        self.tiles.reserve_stage(nrows, ncols);
    }

    /// Bytes of staging storage this workspace currently retains: tile
    /// scratch (including the TF32 B stage), batched per-RHS stages,
    /// permutation staging matrices, and the hybrid path's per-region
    /// scratch, recursively. This is the quantity the serving engine's
    /// paged allocator charges against its page budget.
    pub fn footprint_bytes(&self) -> usize {
        let dense = |m: &Option<DenseMatrix>| {
            m.as_ref()
                .map_or(0, |m| m.nrows() * m.ncols() * std::mem::size_of::<f32>())
        };
        self.tiles.footprint_bytes()
            + self
                .batch_stages
                .iter()
                .map(|s| s.footprint_bytes())
                .sum::<usize>()
            + dense(&self.staging_b)
            + dense(&self.staging_c)
            + self
                .region_scratch
                .iter()
                .map(|r| r.ws.footprint_bytes() + dense(&r.out))
                .sum::<usize>()
    }
}

/// A thread-safe pool of [`Workspace`]s for callers that multiplex many
/// concurrent multiplies over shared plans (the serving engine's
/// steady state): checking out hands back a previously-grown workspace
/// when one is available, so after warmup no request allocates staging
/// buffers or tile scratch.
///
/// The pool is bounded: returning a workspace beyond `max_idle` drops
/// it instead of growing the idle list without limit.
#[derive(Debug)]
pub struct WorkspacePool {
    idle: std::sync::Mutex<Vec<Workspace>>,
    max_idle: usize,
}

impl WorkspacePool {
    /// An empty pool retaining at most `max_idle` idle workspaces.
    pub fn new(max_idle: usize) -> Self {
        WorkspacePool {
            idle: std::sync::Mutex::new(Vec::new()),
            max_idle,
        }
    }

    /// Take a workspace (a pooled one if available, else a fresh one).
    pub fn checkout(&self) -> Workspace {
        match self.idle.lock().unwrap().pop() {
            Some(ws) => {
                spmm_trace::counter_add("workspace.pool_hits", 1);
                ws
            }
            None => {
                spmm_trace::counter_add("workspace.pool_misses", 1);
                Workspace::new()
            }
        }
    }

    /// Return a workspace to the pool (dropped if the pool is full).
    pub fn restore(&self, ws: Workspace) {
        let mut idle = self.idle.lock().unwrap();
        if idle.len() < self.max_idle {
            idle.push(ws);
        }
    }

    /// Number of idle workspaces currently pooled.
    pub fn idle_len(&self) -> usize {
        self.idle.lock().unwrap().len()
    }
}

/// Reuse `slot` if it already has the right shape, else (re)allocate.
pub(crate) fn ensure_staging(
    slot: &mut Option<DenseMatrix>,
    nrows: usize,
    ncols: usize,
) -> &mut DenseMatrix {
    let fits = slot
        .as_ref()
        .is_some_and(|m| m.nrows() == nrows && m.ncols() == ncols);
    if !fits {
        *slot = Some(DenseMatrix::zeros(nrows, ncols));
        spmm_trace::counter_add("workspace.staging_allocs", 1);
    } else {
        spmm_trace::counter_add("workspace.staging_reuses", 1);
    }
    slot.as_mut().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_checkout_restore_cycle_reuses_and_bounds() {
        let pool = WorkspacePool::new(2);
        let a = pool.checkout();
        let b = pool.checkout();
        let c = pool.checkout();
        assert_eq!(pool.idle_len(), 0);
        pool.restore(a);
        pool.restore(b);
        pool.restore(c); // beyond max_idle: dropped
        assert_eq!(pool.idle_len(), 2);
        let _ = pool.checkout();
        assert_eq!(pool.idle_len(), 1);
    }

    #[test]
    fn staging_is_reused_when_shape_matches() {
        let mut slot = None;
        {
            let m = ensure_staging(&mut slot, 4, 3);
            m.set(0, 0, 7.0);
        }
        let m2 = ensure_staging(&mut slot, 4, 3);
        assert_eq!(m2.get(0, 0), 7.0, "same buffer came back");
        let m3 = ensure_staging(&mut slot, 5, 3);
        assert_eq!(m3.nrows(), 5);
        assert_eq!(m3.get(0, 0), 0.0, "shape change reallocates");
    }
}
