//! QoS request queue (weighted fair dequeue, tenant quotas) and
//! per-request tickets.
//!
//! The queue is a Mutex + Condvar MPMC structure: cheap at the request
//! granularity the engine operates at (a whole SpMM per item). Three
//! admission/ordering mechanisms layer on top of the old bounded deque:
//!
//! * **One deque per [`Priority`] class**, dequeued by the
//!   [`WeightedSchedule`] stride scheduler — classes share workers
//!   proportionally to their weights, so interactive traffic is not
//!   inverted behind bulk work and bulk work is never starved.
//! * **Per-tenant quotas**: each tenant's *queued* request count is
//!   tracked under the queue lock; a tenant at quota is refused at push
//!   (the crate-private `Push::Quota`) so one noisy client cannot
//!   consume the whole queue.
//! * **Bounded capacity** as before: pushes never block — a full queue
//!   *rejects*, which is the admission-control contract
//!   ([`crate::SubmitOutcome::Rejected`]).
//!
//! Workers block on pops and coalesce same-key neighbours into
//! micro-batches. Coalescing sweeps *all* classes: identical work is
//! strictly cheaper executed together, so a batch window overrides
//! fairness for requests that share a plan and operand shape.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use spmm_common::{Result, SpmmError};
use spmm_kernels::PreparedKernel;
use spmm_matrix::DenseMatrix;

use crate::cache::PlanKey;
use crate::pages::PageLease;
use crate::qos::{Priority, Tenant, WeightedSchedule};

/// One queued multiply: `C = A × B` for the plan identified by `key`.
pub(crate) struct Request {
    pub key: PlanKey,
    pub plan: Arc<PreparedKernel>,
    pub b: DenseMatrix,
    pub ticket: Arc<TicketShared>,
    /// Scheduling class (selects the deque and the trace label).
    pub priority: Priority,
    /// Tenant charged for this request's queue slot.
    pub tenant: Tenant,
    /// When the request was admitted (for accurate
    /// [`SpmmError::DeadlineExpired`] `waited` reporting).
    pub enqueued_at: Instant,
    /// Absolute deadline; the request is dropped *before execution*
    /// (with [`SpmmError::DeadlineExpired`]) if a worker reaches it
    /// after this point.
    pub deadline: Option<Instant>,
    /// Pages leased at admission for the operand copy + output buffer;
    /// split at completion (operand half released, output half rides
    /// with the ticket until the result is taken).
    pub lease: Option<PageLease>,
}

/// Completion slot shared between a [`Ticket`] and the worker that
/// eventually executes (or expires) the request.
pub(crate) struct TicketShared {
    slot: Mutex<Slot>,
    cv: Condvar,
}

#[derive(Default)]
struct Slot {
    result: Option<Result<DenseMatrix>>,
    /// Output-buffer pages, still charged until the result is taken
    /// (or the ticket abandoned) — the engine's RSS accounting covers
    /// results it is holding on a client's behalf.
    lease: Option<PageLease>,
}

impl TicketShared {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketShared {
            slot: Mutex::new(Slot::default()),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn complete(&self, result: Result<DenseMatrix>, lease: Option<PageLease>) {
        let mut slot = self.slot.lock().unwrap();
        slot.result = Some(result);
        slot.lease = lease;
        drop(slot);
        self.cv.notify_all();
    }
}

/// A claim on the result of a submitted multiply. Redeem with
/// [`Ticket::wait`] (blocking) or [`Ticket::wait_timeout`].
#[must_use = "a dropped ticket abandons its result"]
pub struct Ticket {
    pub(crate) shared: Arc<TicketShared>,
}

impl Ticket {
    /// Block until the request completes and take the result.
    pub fn wait(self) -> Result<DenseMatrix> {
        let mut slot = self.shared.slot.lock().unwrap();
        while slot.result.is_none() {
            slot = self.shared.cv.wait(slot).unwrap();
        }
        slot.lease = None; // taking the result releases its pages
        slot.result.take().unwrap()
    }

    /// Like [`Ticket::wait`], but give up after `dur` with
    /// [`SpmmError::Timeout`] — the *caller-side* wait bound, distinct
    /// from the server-side [`SpmmError::DeadlineExpired`] drop. The
    /// request itself may still complete later; its result is discarded
    /// with the ticket.
    pub fn wait_timeout(self, dur: Duration) -> Result<DenseMatrix> {
        let deadline = Instant::now() + dur;
        let mut slot = self.shared.slot.lock().unwrap();
        while slot.result.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return Err(SpmmError::Timeout {
                    what: "multiply ticket",
                    waited_ms: dur.as_millis() as u64,
                });
            }
            let (s, _) = self.shared.cv.wait_timeout(slot, deadline - now).unwrap();
            slot = s;
        }
        slot.lease = None;
        slot.result.take().unwrap()
    }

    /// Non-blocking check: `true` once a result (or error) is ready.
    pub fn is_ready(&self) -> bool {
        self.shared.slot.lock().unwrap().result.is_some()
    }
}

struct QueueInner {
    classes: [VecDeque<Request>; Priority::COUNT],
    len: usize,
    tenants: HashMap<Tenant, usize>,
    sched: WeightedSchedule,
    shutdown: bool,
}

impl QueueInner {
    fn backlogged(&self) -> [bool; Priority::COUNT] {
        [
            !self.classes[0].is_empty(),
            !self.classes[1].is_empty(),
            !self.classes[2].is_empty(),
        ]
    }

    /// Bookkeeping for any request leaving the queue, whichever path
    /// removed it.
    fn note_removed(&mut self, req: &Request) {
        self.len -= 1;
        if let Some(n) = self.tenants.get_mut(&req.tenant) {
            *n -= 1;
            if *n == 0 {
                self.tenants.remove(&req.tenant);
            }
        }
    }
}

/// The engine's bounded, class-aware MPMC request queue.
pub(crate) struct RequestQueue {
    capacity: usize,
    tenant_quota: Option<usize>,
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
}

pub(crate) enum Push {
    Ok,
    Full(Request),
    /// The request's tenant already has `queued` requests in the queue,
    /// at or over the configured quota.
    Quota {
        req: Request,
        queued: usize,
    },
    ShutDown(Request),
}

impl RequestQueue {
    pub(crate) fn new(
        capacity: usize,
        weights: [u64; Priority::COUNT],
        tenant_quota: Option<usize>,
    ) -> Self {
        RequestQueue {
            capacity: capacity.max(1),
            tenant_quota,
            inner: Mutex::new(QueueInner {
                classes: Default::default(),
                len: 0,
                tenants: HashMap::new(),
                sched: WeightedSchedule::new(weights),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// Non-blocking bounded push; full queues, tenants at quota, and
    /// shut-down queues hand the request back so the caller can surface
    /// the rejection (with a `retry_after` hint where meaningful).
    pub(crate) fn try_push(&self, req: Request) -> Push {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown {
            return Push::ShutDown(req);
        }
        let queued = inner.tenants.get(&req.tenant).copied().unwrap_or(0);
        if let Some(quota) = self.tenant_quota {
            if queued >= quota {
                return Push::Quota { req, queued };
            }
        }
        if inner.len >= self.capacity {
            return Push::Full(req);
        }
        *inner.tenants.entry(req.tenant.clone()).or_insert(0) += 1;
        inner.len += 1;
        inner.classes[req.priority.index()].push_back(req);
        drop(inner);
        // notify_all, not notify_one: a worker parked in
        // `drain_same_key` (waiting out its batch window for one key)
        // must not swallow the only wakeup meant for an idle worker.
        self.not_empty.notify_all();
        Push::Ok
    }

    /// Block until a request is available (returns `None` once the
    /// queue is shut down *and* drained — workers exit gracefully).
    /// The class served next is chosen by the weighted fair schedule.
    pub(crate) fn pop_blocking(&self) -> Option<Request> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(req) = Self::pop_scheduled(&mut inner) {
                return Some(req);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking pop (the inline [`crate::Engine::run_until_idle`]
    /// path), same weighted fair schedule as the workers.
    pub(crate) fn try_pop(&self) -> Option<Request> {
        Self::pop_scheduled(&mut self.inner.lock().unwrap())
    }

    fn pop_scheduled(inner: &mut QueueInner) -> Option<Request> {
        let class = inner.sched.pick(inner.backlogged())?;
        let req = inner.classes[class.index()].pop_front()?;
        inner.note_removed(&req);
        Some(req)
    }

    /// Extract up to `max` queued requests with the same key as `key`,
    /// waiting until `window_deadline` for stragglers if the batch is
    /// still short. All classes are swept (same-key work batches
    /// together regardless of priority — strictly cheaper than running
    /// it twice); other keys are left queued in order.
    pub(crate) fn drain_same_key(
        &self,
        key: &PlanKey,
        max: usize,
        window_deadline: Instant,
        out: &mut Vec<Request>,
    ) {
        let mut taken = 0;
        let mut inner = self.inner.lock().unwrap();
        loop {
            // Sweep matching requests out of each class deque,
            // preserving the relative order of everything else.
            for class in Priority::ALL {
                let mut i = 0;
                while i < inner.classes[class.index()].len() && taken < max {
                    if inner.classes[class.index()][i].key == *key {
                        // remove(i) keeps order (deque shifts).
                        let req = inner.classes[class.index()].remove(i).unwrap();
                        inner.note_removed(&req);
                        out.push(req);
                        taken += 1;
                    } else {
                        i += 1;
                    }
                }
            }
            if taken >= max || inner.shutdown {
                return;
            }
            let now = Instant::now();
            if now >= window_deadline {
                return;
            }
            let (g, _) = self
                .not_empty
                .wait_timeout(inner, window_deadline - now)
                .unwrap();
            inner = g;
        }
    }

    /// Mark the queue shut down and wake every sleeper.
    pub(crate) fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.not_empty.notify_all();
    }
}
