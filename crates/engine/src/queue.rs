//! Bounded request queue (backpressure) and per-request tickets.
//!
//! The queue is a Mutex + Condvar MPMC deque: cheap at the request
//! granularity the engine operates at (a whole SpMM per item). Pushes
//! never block — a full queue *rejects*, which is the admission-control
//! contract ([`crate::Submit::Rejected`]). Workers block on pops and
//! coalesce same-key neighbours into micro-batches.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use spmm_common::{Result, SpmmError};
use spmm_kernels::PreparedKernel;
use spmm_matrix::DenseMatrix;

use crate::cache::PlanKey;

/// One queued multiply: `C = A × B` for the plan identified by `key`.
pub(crate) struct Request {
    pub key: PlanKey,
    pub plan: Arc<PreparedKernel>,
    pub b: DenseMatrix,
    pub ticket: Arc<TicketShared>,
    /// Absolute deadline; the request is dropped (with
    /// [`SpmmError::Timeout`]) if a worker reaches it after this point.
    pub deadline: Option<Instant>,
}

/// Completion slot shared between a [`Ticket`] and the worker that
/// eventually executes (or expires) the request.
pub(crate) struct TicketShared {
    state: Mutex<Option<Result<DenseMatrix>>>,
    cv: Condvar,
}

impl TicketShared {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketShared {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn complete(&self, result: Result<DenseMatrix>) {
        *self.state.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }
}

/// A claim on the result of a submitted multiply. Redeem with
/// [`Ticket::wait`] (blocking) or [`Ticket::wait_timeout`].
#[must_use = "a dropped ticket abandons its result"]
pub struct Ticket {
    pub(crate) shared: Arc<TicketShared>,
}

impl Ticket {
    /// Block until the request completes and take the result.
    pub fn wait(self) -> Result<DenseMatrix> {
        let mut state = self.shared.state.lock().unwrap();
        while state.is_none() {
            state = self.shared.cv.wait(state).unwrap();
        }
        state.take().unwrap()
    }

    /// Like [`Ticket::wait`], but give up after `dur` with
    /// [`SpmmError::Timeout`]. The request itself may still complete
    /// later; its result is discarded with the ticket.
    pub fn wait_timeout(self, dur: Duration) -> Result<DenseMatrix> {
        let deadline = Instant::now() + dur;
        let mut state = self.shared.state.lock().unwrap();
        while state.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return Err(SpmmError::Timeout {
                    what: "multiply ticket",
                    waited_ms: dur.as_millis() as u64,
                });
            }
            let (s, _) = self.shared.cv.wait_timeout(state, deadline - now).unwrap();
            state = s;
        }
        state.take().unwrap()
    }

    /// Non-blocking check: `true` once a result (or error) is ready.
    pub fn is_ready(&self) -> bool {
        self.shared.state.lock().unwrap().is_some()
    }
}

struct QueueInner {
    items: VecDeque<Request>,
    shutdown: bool,
}

/// The engine's bounded MPMC request queue.
pub(crate) struct RequestQueue {
    capacity: usize,
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
}

pub(crate) enum Push {
    Ok,
    Full(Request),
    ShutDown(Request),
}

impl RequestQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        RequestQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Non-blocking bounded push; full or shut-down queues hand the
    /// request back so the caller can surface the rejection.
    pub(crate) fn try_push(&self, req: Request) -> Push {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown {
            return Push::ShutDown(req);
        }
        if inner.items.len() >= self.capacity {
            return Push::Full(req);
        }
        inner.items.push_back(req);
        drop(inner);
        // notify_all, not notify_one: a worker parked in
        // `drain_same_key` (waiting out its batch window for one key)
        // must not swallow the only wakeup meant for an idle worker.
        self.not_empty.notify_all();
        Push::Ok
    }

    /// Block until a request is available (returns `None` once the
    /// queue is shut down *and* drained — workers exit gracefully).
    pub(crate) fn pop_blocking(&self) -> Option<Request> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(req) = inner.items.pop_front() {
                return Some(req);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking pop (the inline [`crate::Engine::poll`] path).
    pub(crate) fn try_pop(&self) -> Option<Request> {
        self.inner.lock().unwrap().items.pop_front()
    }

    /// Extract up to `max` queued requests with the same key as `key`,
    /// waiting until `window_deadline` for stragglers if the batch is
    /// still short. Other keys are left queued in order.
    pub(crate) fn drain_same_key(
        &self,
        key: &PlanKey,
        max: usize,
        window_deadline: Instant,
        out: &mut Vec<Request>,
    ) {
        let mut taken = 0;
        let mut inner = self.inner.lock().unwrap();
        loop {
            // Sweep matching requests out of the deque, preserving the
            // relative order of everything else.
            let mut i = 0;
            while i < inner.items.len() && taken < max {
                if inner.items[i].key == *key {
                    // remove(i) keeps order (deque shifts).
                    out.push(inner.items.remove(i).unwrap());
                    taken += 1;
                } else {
                    i += 1;
                }
            }
            if taken >= max || inner.shutdown {
                return;
            }
            let now = Instant::now();
            if now >= window_deadline {
                return;
            }
            let (g, _) = self
                .not_empty
                .wait_timeout(inner, window_deadline - now)
                .unwrap();
            inner = g;
        }
    }

    /// Mark the queue shut down and wake every sleeper.
    pub(crate) fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.not_empty.notify_all();
    }
}
