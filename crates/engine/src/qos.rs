//! Quality-of-service vocabulary for the serving tier: priority
//! classes, tenants, per-request submit options, and the weighted
//! fair-dequeue schedule the queue runs on.
//!
//! The serving engine admits work from many tenants with different
//! latency needs. Three mechanisms keep that fair and bounded:
//!
//! * **Priority classes** ([`Priority`]) — every request belongs to one
//!   of three classes. The queue dequeues *proportionally to class
//!   weight* (stride scheduling, see [`WeightedSchedule`]), so a
//!   backlogged low class is never starved and a backlogged high class
//!   is never inverted behind bulk work.
//! * **Tenants** ([`Tenant`]) — a cheap, cloneable identity that quota
//!   accounting keys on. Admission control caps each tenant's *queued*
//!   requests; beyond the cap a submission is refused with a
//!   `retry_after` hint instead of silently waiting.
//! * **Submit options** ([`SubmitOptions`]) — the builder-style bundle
//!   the redesigned `Session::submit` takes, so QoS is expressible
//!   without multiplying method variants.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// The scheduling class of a request. Classes share the worker pool by
/// *weight* (default 4 : 2 : 1), not by strict precedence: a saturated
/// [`Priority::Interactive`] stream cannot starve
/// [`Priority::Batch`] work, and bulk traffic cannot invert ahead of
/// interactive traffic beyond its proportional share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Priority {
    /// Latency-sensitive traffic (user-facing queries).
    Interactive,
    /// The default class for ordinary requests.
    #[default]
    Standard,
    /// Throughput-oriented bulk work (training sweeps, backfills).
    Batch,
}

impl Priority {
    /// Every class, highest first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Number of classes (array-index bound).
    pub const COUNT: usize = 3;

    /// Dense index for per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }

    /// Default dequeue weights (4 : 2 : 1).
    pub const DEFAULT_WEIGHTS: [u64; Priority::COUNT] = [4, 2, 1];

    /// Display name (also the trace-counter suffix).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A tenant identity for quota accounting: cheap to clone (shared
/// string), hashable, with a process-wide anonymous default.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tenant(Arc<str>);

impl Tenant {
    /// A named tenant.
    pub fn new(name: impl AsRef<str>) -> Self {
        Tenant(Arc::from(name.as_ref()))
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl Default for Tenant {
    /// The anonymous tenant requests belong to when none is given.
    fn default() -> Self {
        Tenant(Arc::from("anonymous"))
    }
}

impl fmt::Display for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Tenant {
    fn from(name: &str) -> Self {
        Tenant::new(name)
    }
}

impl From<String> for Tenant {
    fn from(name: String) -> Self {
        Tenant::new(name)
    }
}

/// Per-request QoS options for `Session::submit` — the one submission
/// surface. Builder-style:
///
/// ```
/// use spmm_engine::{Priority, SubmitOptions};
/// use std::time::Duration;
///
/// let opts = SubmitOptions::new()
///     .priority(Priority::Interactive)
///     .tenant("acme")
///     .deadline(Duration::from_millis(50));
/// assert_eq!(opts.priority_class(), Priority::Interactive);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    priority: Priority,
    tenant: Tenant,
    deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Defaults: [`Priority::Standard`], the anonymous tenant, the
    /// engine's default deadline (if any).
    pub fn new() -> Self {
        SubmitOptions::default()
    }

    /// Scheduling class (default [`Priority::Standard`]).
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Tenant for quota accounting (default anonymous).
    pub fn tenant(mut self, t: impl Into<Tenant>) -> Self {
        self.tenant = t.into();
        self
    }

    /// Relative deadline: if the request is still queued this long
    /// after submission, it is dropped *before* execution and its
    /// ticket completes with `SpmmError::DeadlineExpired`. Overrides
    /// the engine-wide default deadline.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// The configured class.
    pub fn priority_class(&self) -> Priority {
        self.priority
    }

    /// The configured tenant.
    pub fn tenant_id(&self) -> &Tenant {
        &self.tenant
    }

    /// The configured relative deadline, if any.
    pub fn deadline_after(&self) -> Option<Duration> {
        self.deadline
    }

    pub(crate) fn into_parts(self) -> (Priority, Tenant, Option<Duration>) {
        (self.priority, self.tenant, self.deadline)
    }
}

impl From<Priority> for SubmitOptions {
    fn from(p: Priority) -> Self {
        SubmitOptions::new().priority(p)
    }
}

/// Deterministic weighted fair dequeue via **stride scheduling**: class
/// `i` with weight `w_i` holds a pass counter advanced by
/// `STRIDE_UNIT / w_i` per dequeue; each pick takes the *backlogged*
/// class with the smallest pass. Over any interval in which a set of
/// classes stays backlogged, class `i` receives `w_i / Σw` of the
/// dequeues (±1 rounding) — proportional share, hence no starvation
/// and no inversion beyond the configured ratio.
///
/// Empty classes neither advance nor accumulate credit: on becoming
/// backlogged again a class's pass is clamped up to the current
/// minimum, so idle time cannot be banked into a later burst.
#[derive(Debug, Clone)]
pub struct WeightedSchedule {
    strides: [u64; Priority::COUNT],
    passes: [u64; Priority::COUNT],
    /// Virtual clock: the winning pass of the most recent dequeue.
    /// Classes re-entering after idling join at this clock instead of
    /// replaying the passes they never advanced through.
    global_pass: u64,
}

/// Pass-counter resolution; weights up to this magnitude divide evenly.
const STRIDE_UNIT: u64 = 1 << 20;

impl WeightedSchedule {
    /// A schedule over the given per-class weights (each clamped ≥ 1).
    pub fn new(weights: [u64; Priority::COUNT]) -> Self {
        let mut strides = [0u64; Priority::COUNT];
        for (s, &w) in strides.iter_mut().zip(&weights) {
            *s = STRIDE_UNIT / w.clamp(1, STRIDE_UNIT);
        }
        WeightedSchedule {
            strides,
            passes: [0; Priority::COUNT],
            global_pass: 0,
        }
    }

    /// Pick the next class to serve among `backlogged` ones (true =
    /// that class has queued work). Returns `None` when nothing is
    /// backlogged. Advances the winner's pass.
    pub fn pick(&mut self, backlogged: [bool; Priority::COUNT]) -> Option<Priority> {
        // Re-entering classes join at the current front of the virtual
        // clock instead of replaying banked idle time.
        let clock = self.global_pass;
        for (pass, &b) in self.passes.iter_mut().zip(&backlogged) {
            if b && *pass < clock {
                *pass = clock;
            }
        }
        let winner = Priority::ALL
            .into_iter()
            .filter(|p| backlogged[p.index()])
            .min_by_key(|p| self.passes[p.index()])?;
        self.global_pass = self.passes[winner.index()];
        self.passes[winner.index()] =
            self.passes[winner.index()].saturating_add(self.strides[winner.index()]);
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_index_and_order() {
        assert_eq!(Priority::ALL.len(), Priority::COUNT);
        for (i, p) in Priority::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Priority::default(), Priority::Standard);
    }

    #[test]
    fn schedule_is_proportional_when_all_backlogged() {
        let weights = [4, 2, 1];
        let mut sched = WeightedSchedule::new(weights);
        let mut served = [0u64; Priority::COUNT];
        const ROUNDS: u64 = 7_000;
        for _ in 0..ROUNDS {
            let p = sched.pick([true, true, true]).unwrap();
            served[p.index()] += 1;
        }
        let total_w: u64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = ROUNDS * w / total_w;
            let got = served[i];
            assert!(
                got.abs_diff(expect) <= 2,
                "class {i}: {got} dequeues, expected ~{expect}"
            );
        }
    }

    #[test]
    fn empty_classes_do_not_bank_credit() {
        let mut sched = WeightedSchedule::new([4, 2, 1]);
        // Serve only Interactive for a while…
        for _ in 0..1000 {
            assert_eq!(
                sched.pick([true, false, false]),
                Some(Priority::Interactive)
            );
        }
        // …then Batch arrives. It must not monopolize the queue to
        // "catch up" on the idle interval: within the next 10 picks,
        // Interactive is served at least its proportional share.
        let mut interactive = 0;
        for _ in 0..10 {
            if sched.pick([true, false, true]) == Some(Priority::Interactive) {
                interactive += 1;
            }
        }
        assert!(
            interactive >= 7,
            "interactive got {interactive}/10 after batch re-entry"
        );
    }

    #[test]
    fn schedule_returns_none_when_idle() {
        let mut sched = WeightedSchedule::new(Priority::DEFAULT_WEIGHTS);
        assert_eq!(sched.pick([false, false, false]), None);
    }

    #[test]
    fn submit_options_builder_round_trips() {
        let o = SubmitOptions::new()
            .priority(Priority::Batch)
            .tenant("acme")
            .deadline(Duration::from_millis(5));
        assert_eq!(o.priority_class(), Priority::Batch);
        assert_eq!(o.tenant_id().name(), "acme");
        assert_eq!(o.deadline_after(), Some(Duration::from_millis(5)));
        let (p, t, d) = o.into_parts();
        assert_eq!(p, Priority::Batch);
        assert_eq!(t.name(), "acme");
        assert_eq!(d, Some(Duration::from_millis(5)));
    }
}
