//! The shared plan cache: bounded, LRU, keyed by matrix content.
//!
//! Preprocessing is the expensive half of the Acc-SpMM workflow (§5 of
//! the paper amortizes it over thousands of multiplies); when many
//! concurrent clients serve the *same* matrix, the cache makes them
//! share one [`PreparedKernel`]. Two properties matter under load:
//!
//! * **single-flight builds** — the first client to miss installs an
//!   in-flight guard and builds *outside* the cache lock; every
//!   concurrent client for the same key blocks on the guard instead of
//!   rebuilding (no thundering herd). N threads × one key ⇒ exactly one
//!   plan build.
//! * **bounded LRU** — at capacity, the least-recently-used *ready*
//!   entry is evicted (in-flight builds are never evicted, so a waiter
//!   can't be orphaned).
//!
//! With [`PlanCache::with_store`] the cache gains a **persistent
//! tier**: misses first try to rehydrate a serialized plan from a
//! [`PlanStore`] directory (still single-flight — one thread loads,
//! the rest wait on the guard), and freshly built plans are written
//! through so the next process starts warm. A store artifact that
//! fails validation falls back to a fresh build and bumps
//! `plan.load_fallback` — degraded persistence never fails a request.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};

use crate::store::PlanStore;
use spmm_common::Result;
use spmm_kernels::{AccConfig, KernelKind, PreparedKernel};
use spmm_sim::Arch;

/// Identity of a cached plan: matrix content fingerprint plus every
/// input that changes the preprocessing output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`spmm_matrix::CsrMatrix::content_fingerprint`] of the operand.
    pub fingerprint: u64,
    /// Which kernel strategy the plan compiles.
    pub kind: KernelKind,
    /// Target architecture (drives the balance model).
    pub arch: Arch,
    /// Feature dimension the plan is specialized for.
    pub feature_dim: usize,
    /// Acc ablation configuration.
    pub config: AccConfig,
}

/// Result slot a concurrent waiter blocks on while another thread
/// builds the plan for the same key.
struct BuildGuard {
    done: Mutex<Option<Result<Arc<PreparedKernel>>>>,
    cv: Condvar,
}

impl BuildGuard {
    fn new() -> Arc<Self> {
        Arc::new(BuildGuard {
            done: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, result: Result<Arc<PreparedKernel>>) {
        *self.done.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Arc<PreparedKernel>> {
        let mut done = self.done.lock().unwrap();
        while done.is_none() {
            done = self.cv.wait(done).unwrap();
        }
        done.as_ref().unwrap().clone()
    }
}

enum Slot {
    Building(Arc<BuildGuard>),
    Ready(Arc<PreparedKernel>),
}

struct Entry {
    slot: Slot,
    last_used: u64,
}

struct Inner {
    map: HashMap<PlanKey, Entry>,
    tick: u64,
}

/// Counters the cache reports (mirrored into `spmm-trace`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by a ready entry.
    pub hits: u64,
    /// Lookups that had to build (or wait on an in-flight build).
    pub misses: u64,
    /// Plans actually built (≤ misses thanks to single-flight).
    pub builds: u64,
    /// Ready entries evicted to stay within capacity.
    pub evictions: u64,
    /// Misses served by rehydrating a persisted plan from the store.
    pub store_hits: u64,
    /// Misses that found no artifact in the store.
    pub store_misses: u64,
    /// Store artifacts that failed validation/rehydration and degraded
    /// to a fresh build.
    pub load_fallbacks: u64,
}

/// Bounded LRU map from [`PlanKey`] to a shared [`PreparedKernel`].
pub struct PlanCache {
    capacity: usize,
    store: Option<PlanStore>,
    inner: Mutex<Inner>,
    stats: Mutex<CacheStats>,
}

impl PlanCache {
    /// A cache holding at most `capacity` ready plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            store: None,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// A cache backed by a persistent [`PlanStore`] at `dir`: misses
    /// try the store before building, and built plans are written
    /// through for the next process's warm start.
    pub fn with_store(capacity: usize, dir: impl AsRef<Path>) -> Result<Self> {
        let mut cache = PlanCache::new(capacity);
        cache.store = Some(PlanStore::open(dir)?);
        Ok(cache)
    }

    /// The persistent tier, when one is configured.
    pub fn store(&self) -> Option<&PlanStore> {
        self.store.as_ref()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently resident (ready or building).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        self.stats.lock().unwrap().clone()
    }

    /// Fetch the plan for `key`, building it with `build` on a miss.
    /// Concurrent callers for the same key share one build; the builder
    /// runs outside the cache lock.
    pub fn get_or_build(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> Result<PreparedKernel>,
    ) -> Result<Arc<PreparedKernel>> {
        enum Role {
            Hit(Arc<PreparedKernel>),
            Wait(Arc<BuildGuard>),
            Build(Arc<BuildGuard>),
        }

        // Phase 1: classify under the lock.
        let role = {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            match inner.map.get_mut(&key) {
                Some(entry) => {
                    entry.last_used = tick;
                    match &entry.slot {
                        Slot::Ready(plan) => {
                            self.bump(|s| s.hits += 1, "engine.cache_hits");
                            Role::Hit(Arc::clone(plan))
                        }
                        Slot::Building(g) => {
                            // Someone else is building: wait outside the lock.
                            self.bump(|s| s.misses += 1, "engine.cache_misses");
                            Role::Wait(Arc::clone(g))
                        }
                    }
                }
                None => {
                    self.bump(|s| s.misses += 1, "engine.cache_misses");
                    let g = BuildGuard::new();
                    self.evict_to_fit(&mut inner);
                    inner.map.insert(
                        key,
                        Entry {
                            slot: Slot::Building(Arc::clone(&g)),
                            last_used: tick,
                        },
                    );
                    Role::Build(g)
                }
            }
        };

        let guard = match role {
            Role::Hit(plan) => return Ok(plan),
            Role::Wait(g) => return g.wait(),
            Role::Build(g) => g,
        };

        // Phase 2: we own the build; run it without holding the lock.
        // A configured store is tried first (warm restart); a missing
        // artifact builds fresh, a *broken* one also builds fresh but
        // announces the degradation.
        let built = {
            let _span = spmm_trace::span("engine.plan_build");
            let mut loaded = None;
            if let Some(store) = &self.store {
                match store.load(&key) {
                    Ok(Some(plan)) => {
                        self.bump(|s| s.store_hits += 1, "engine.store_hits");
                        loaded = Some(PreparedKernel::from_plan(plan));
                    }
                    Ok(None) => self.bump(|s| s.store_misses += 1, "engine.store_misses"),
                    Err(_) => self.bump(|s| s.load_fallbacks += 1, "plan.load_fallback"),
                }
            }
            let from_store = loaded.is_some();
            let result = match loaded {
                Some(kernel) => Ok(kernel),
                None => {
                    self.bump(|s| s.builds += 1, "engine.plan_builds");
                    build()
                }
            };
            if !from_store {
                if let (Some(store), Ok(kernel)) = (&self.store, &result) {
                    // Best-effort write-through; persistence failures
                    // never fail the request.
                    let _ = store.save(&key, kernel.execution_plan());
                }
            }
            result.map(Arc::new)
        };

        // Phase 3: publish to the map, then release the waiters.
        {
            let mut inner = self.inner.lock().unwrap();
            match &built {
                Ok(plan) => {
                    if let Some(entry) = inner.map.get_mut(&key) {
                        entry.slot = Slot::Ready(Arc::clone(plan));
                    }
                }
                Err(_) => {
                    inner.map.remove(&key);
                }
            }
        }
        guard.complete(built.clone());
        built
    }

    /// Install an externally-built plan as a ready entry (used to hand
    /// an existing [`PreparedKernel`] — e.g. a GNN model's — to the
    /// engine without rebuilding it). Replaces any previous entry.
    pub fn install(&self, key: PlanKey, plan: Arc<PreparedKernel>) {
        if let Some(store) = &self.store {
            let _ = store.save(&key, plan.execution_plan());
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) {
            self.evict_to_fit(&mut inner);
        }
        inner.map.insert(
            key,
            Entry {
                slot: Slot::Ready(plan),
                last_used: tick,
            },
        );
    }

    /// Drop every entry (ready or in flight) keyed by the given matrix
    /// fingerprint, and purge matching artifacts from the persistent
    /// tier — the partial invalidation dynamic-graph updates perform
    /// when an operand is superseded by its compacted successor. Plans
    /// for other matrices are untouched. Returns how many in-memory
    /// entries were dropped. An in-flight build for a dropped key
    /// simply doesn't publish; its waiters still get the built plan.
    pub fn invalidate_matrix(&self, fingerprint: u64) -> usize {
        let removed = {
            let mut inner = self.inner.lock().unwrap();
            let victims: Vec<PlanKey> = inner
                .map
                .keys()
                .filter(|k| k.fingerprint == fingerprint)
                .copied()
                .collect();
            for k in &victims {
                inner.map.remove(k);
            }
            victims.len()
        };
        if removed > 0 {
            spmm_trace::counter_add("engine.cache_invalidations", removed as u64);
        }
        if let Some(store) = &self.store {
            store.remove_matrix(fingerprint);
        }
        removed
    }

    fn evict_to_fit(&self, inner: &mut Inner) {
        while inner.map.len() >= self.capacity {
            let victim = inner
                .map
                .iter()
                .filter(|(_, e)| matches!(e.slot, Slot::Ready(_)))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                    self.bump(|s| s.evictions += 1, "engine.cache_evictions");
                }
                None => break, // everything in flight; tolerate overflow
            }
        }
    }

    fn bump(&self, f: impl FnOnce(&mut CacheStats), trace_name: &'static str) {
        f(&mut self.stats.lock().unwrap());
        spmm_trace::counter_add(trace_name, 1);
    }
}
