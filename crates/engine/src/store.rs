//! The persistent plan tier: a directory of plan-IR files keyed by
//! [`PlanKey`].
//!
//! The in-memory [`PlanCache`](crate::PlanCache) amortizes
//! preprocessing across clients of one process; the store amortizes it
//! across *processes*. Every plan the cache builds is written through
//! here, and a warm restart serves its first request from disk — a
//! rehydration (deserialize + deterministic partition rebuild) instead
//! of the full reorder/format/balance/compile pipeline.
//!
//! Loads are strict: the file name encodes the full key, and the
//! [`PlanLoader`] re-validates every binding against the key before
//! rehydrating, so a corrupted or stale artifact degrades to a fresh
//! build (see `plan.load_fallback` in the cache), never to a wrong
//! answer.

use std::path::{Path, PathBuf};

use crate::cache::PlanKey;
use spmm_common::{Result, SpmmError};
use spmm_kernels::ir::{acc_config_hash, arch_slug, kind_slug};
use spmm_kernels::{ExecutionPlan, PlanLoader};

/// A directory of serialized plans, one file per [`PlanKey`].
#[derive(Debug, Clone)]
pub struct PlanStore {
    dir: PathBuf,
}

impl PlanStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<PlanStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(PlanStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a key maps to: every key component is in the name, so
    /// distinct bindings never collide.
    pub fn path_for(&self, key: &PlanKey) -> PathBuf {
        self.dir.join(format!(
            "{:016x}-{}-{}-d{}-{:016x}.plan",
            key.fingerprint,
            kind_slug(key.kind),
            arch_slug(key.arch),
            key.feature_dim,
            acc_config_hash(&key.config),
        ))
    }

    /// Persist a plan under its key. The write is atomic (temp file +
    /// rename), so concurrent readers never observe a torn artifact.
    /// Returns the serialized size in bytes.
    pub fn save(&self, key: &PlanKey, plan: &ExecutionPlan) -> Result<u64> {
        let bytes = plan.to_ir().to_bytes()?;
        let path = self.path_for(key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            SpmmError::from(e)
        })?;
        Ok(bytes.len() as u64)
    }

    /// Load and rehydrate the plan for `key`. `Ok(None)` means the
    /// store has no artifact for the key; `Err` means an artifact
    /// exists but failed validation or rehydration (the caller should
    /// fall back to a fresh build).
    pub fn load(&self, key: &PlanKey) -> Result<Option<ExecutionPlan>> {
        let path = self.path_for(key);
        if !path.exists() {
            return Ok(None);
        }
        PlanLoader::new()
            .expect_fingerprint(key.fingerprint)
            .expect_kind(key.kind)
            .expect_arch(key.arch)
            .expect_feature_dim(key.feature_dim)
            .expect_config(key.config)
            .load(&path)
            .map(Some)
    }

    /// Whether an artifact for `key` is present (no validation).
    pub fn contains(&self, key: &PlanKey) -> bool {
        self.path_for(key).exists()
    }

    /// Remove every artifact whose key binds the given matrix
    /// fingerprint, regardless of kernel/arch/feature-dim/config — the
    /// partial-invalidation primitive dynamic-graph updates use: plans
    /// for other matrices stay resident. Returns the number of files
    /// removed; I/O errors on individual files are swallowed
    /// (best-effort, like write-through).
    pub fn remove_matrix(&self, fingerprint: u64) -> usize {
        let prefix = format!("{fingerprint:016x}-");
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for e in entries.filter_map(|e| e.ok()) {
            let path = e.path();
            let is_plan = path.extension().is_some_and(|x| x == "plan");
            let matches = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix));
            if is_plan && matches && std::fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Number of plan artifacts resident in the store.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "plan"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no plan artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_kernels::{AccConfig, KernelKind, PreparedKernel};
    use spmm_matrix::gen::uniform_random;
    use spmm_sim::Arch;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "spmm-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key_for(m: &spmm_matrix::CsrMatrix) -> PlanKey {
        PlanKey {
            fingerprint: m.content_fingerprint(),
            kind: KernelKind::AccSpmm,
            arch: Arch::A800,
            feature_dim: 16,
            config: AccConfig::full(),
        }
    }

    #[test]
    fn save_load_roundtrip_and_misses() {
        let dir = temp_dir("roundtrip");
        let store = PlanStore::open(&dir).unwrap();
        let m = uniform_random(64, 4.0, 11);
        let key = key_for(&m);
        assert!(store.load(&key).unwrap().is_none());
        assert!(store.is_empty());

        let plan =
            spmm_kernels::ExecutionPlan::build(key.kind, &m, key.arch, key.feature_dim, key.config)
                .unwrap();
        let bytes = store.save(&key, &plan).unwrap();
        assert!(bytes > 0);
        assert!(store.contains(&key));
        assert_eq!(store.len(), 1);

        let loaded = store.load(&key).unwrap().expect("artifact present");
        let b = spmm_matrix::DenseMatrix::random(64, 16, 3);
        let c1 = PreparedKernel::from_plan(plan).execute(&b).unwrap();
        let c2 = PreparedKernel::from_plan(loaded).execute(&b).unwrap();
        assert_eq!(c1.as_slice(), c2.as_slice());

        // A different key (feature dim) misses cleanly.
        let other = PlanKey {
            feature_dim: 32,
            ..key
        };
        assert!(store.load(&other).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_artifact_is_an_error_not_a_miss() {
        let dir = temp_dir("corrupt");
        let store = PlanStore::open(&dir).unwrap();
        let m = uniform_random(48, 3.0, 5);
        let key = key_for(&m);
        let plan =
            spmm_kernels::ExecutionPlan::build(key.kind, &m, key.arch, key.feature_dim, key.config)
                .unwrap();
        store.save(&key, &plan).unwrap();
        std::fs::write(store.path_for(&key), b"not a plan at all").unwrap();
        assert!(store.load(&key).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
