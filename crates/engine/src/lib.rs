//! # spmm-engine — a QoS serving tier for Acc-SpMM
//!
//! The paper's deployment regime (§5) preprocesses a sparse matrix once
//! and multiplies it against thousands of dense operands. This crate
//! turns that pattern into a *service*: many concurrent clients and
//! tenants, a shared stock of preprocessing artifacts, and explicit
//! admission-control, fairness, and memory-bound semantics under load.
//!
//! Five cooperating pieces:
//!
//! * **Plan cache** ([`cache::PlanCache`]) — bounded LRU keyed by
//!   matrix content fingerprint + kernel + [`Arch`] + feature dim +
//!   [`AccConfig`]. Concurrent sessions for the same operand share one
//!   [`PreparedKernel`] behind an `Arc`; a per-key in-flight guard makes
//!   N simultaneous first-lookups run exactly one build.
//! * **QoS queue** — submitted multiplies land in one bounded deque per
//!   [`Priority`] class; workers dequeue by a weighted fair (stride)
//!   schedule ([`qos::WeightedSchedule`]), so interactive traffic is
//!   not inverted behind bulk work and bulk work is never starved.
//! * **Admission control** — a full queue, a [`Tenant`] at its quota,
//!   or a request that would blow the page budget is refused *at
//!   submit* ([`SubmitOutcome::Rejected`]) with a `retry_after` hint
//!   derived from the measured service rate — never a blanket error
//!   with no guidance, never a block.
//! * **Deadline-aware scheduling** — a request whose deadline passes
//!   while it queues is dropped *before execution* (typed
//!   [`SpmmError::DeadlineExpired`], with the actual queued duration),
//!   so expired work never burns a kernel invocation.
//! * **Paged workspaces** ([`pages::PagePool`]) — operand copies,
//!   output buffers, and worker workspaces are charged in fixed-size
//!   pages against a hard budget with LRU eviction of idle workspaces,
//!   so peak staging memory is bounded and observable under hundreds of
//!   concurrent sessions.
//!
//! Robustness semantics carry over: micro-batching coalesces same-key
//! requests into one [`PreparedKernel::execute_batch_into`] call, and
//! when a tensor-core plan fails to build the session degrades
//! gracefully to the scalar CSR path instead of failing the client.
//!
//! Everything is observable through `spmm-trace` counters
//! (`engine.enqueued` / `engine.dequeued`, `engine.batches` /
//! `engine.batched_requests`, `engine.cache_hits` /
//! `engine.cache_misses`, `engine.rejected`, `engine.degraded_builds`,
//! the QoS taxonomy `engine.qos.served.<class>` /
//! `engine.qos.quota_rejected` / `engine.qos.expired` /
//! `engine.qos.late_executions`, and the paging taxonomy
//! `engine.pages.leased` / `engine.pages.released` /
//! `engine.pages.denied` / `engine.pages.evictions` /
//! `engine.pages.peak`) and the in-process [`EngineStats`] snapshot,
//! which works even with tracing disabled.
//!
//! ```
//! use spmm_engine::{Engine, Priority, SubmitOptions, SubmitOutcome};
//! use spmm_matrix::{gen, DenseMatrix};
//!
//! let engine = Engine::builder().workers(2).build().unwrap();
//! let a = gen::uniform_random(256, 6.0, 42);
//! let session = engine.session(&a).feature_dim(32).open().unwrap();
//!
//! // Synchronous round trip...
//! let b = DenseMatrix::random(256, 32, 7);
//! let c = session.multiply(&b).unwrap();
//! assert_eq!(c.nrows(), 256);
//!
//! // ...or pipelined with QoS options: submit now, redeem later.
//! let opts = SubmitOptions::new().priority(Priority::Interactive).tenant("demo");
//! match session.submit(b.clone(), opts) {
//!     SubmitOutcome::Accepted(ticket) => assert_eq!(ticket.wait().unwrap(), c),
//!     SubmitOutcome::Rejected { retry_after, .. } => panic!("retry in {retry_after:?}"),
//!     _ => unreachable!("non-exhaustive outcome"),
//! }
//! assert_eq!(engine.stats().cache_misses, 1);
//! ```

pub mod cache;
pub mod pages;
pub mod qos;
pub mod queue;
pub mod store;

pub use cache::{CacheStats, PlanCache, PlanKey};
pub use pages::{PageLease, PagePool, PageStats, WorkspaceLease, DEFAULT_PAGE_BYTES};
pub use qos::{Priority, SubmitOptions, Tenant, WeightedSchedule};
pub use queue::Ticket;
pub use store::PlanStore;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spmm_common::{Result, SpmmError};
use spmm_kernels::{AccConfig, KernelKind, PreparedKernel, RepairReport, Workspace};
use spmm_matrix::{CsrMatrix, DenseMatrix};
use spmm_sim::Arch;

use queue::{Push, Request, RequestQueue, TicketShared};

/// Assumed per-request service time before any sample has been
/// measured; keeps `retry_after` hints well-defined from the first
/// rejection (and their formula exactly testable).
const DEFAULT_SERVICE_NS: u64 = 1_000_000;

/// `retry_after` hints are clamped to `[100 µs, 10 s]`.
const RETRY_AFTER_MIN: Duration = Duration::from_micros(100);
/// See [`RETRY_AFTER_MIN`].
const RETRY_AFTER_MAX: Duration = Duration::from_secs(10);

/// Tunables for [`Engine`]; construct via [`Engine::builder`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing queued multiplies. `0` is allowed: no
    /// background threads; drive the engine inline with
    /// [`Engine::run_until_idle`] (single-threaded embeddings and
    /// tests).
    pub workers: usize,
    /// Bounded queue length; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// How long a worker waits for same-key stragglers before running a
    /// short batch.
    pub batch_window: Duration,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Plans the LRU cache retains.
    pub plan_cache_capacity: usize,
    /// Directory of persisted plans backing the cache, if any —
    /// built plans are written through, and restarts rehydrate from it
    /// instead of re-running the preprocessing pipeline.
    pub plan_store: Option<std::path::PathBuf>,
    /// Deadline applied to every request that doesn't carry its own.
    pub default_deadline: Option<Duration>,
    /// Weighted-fair dequeue weights per [`Priority`] class
    /// (Interactive : Standard : Batch, default 4 : 2 : 1).
    pub priority_weights: [u64; Priority::COUNT],
    /// Maximum queued requests per tenant; beyond it submissions are
    /// refused with [`SpmmError::QuotaExceeded`]. `None` = no quota.
    pub tenant_quota: Option<usize>,
    /// Page size of the paged workspace allocator.
    pub page_bytes: usize,
    /// Hard page budget for all staged memory (operand copies, output
    /// buffers, idle worker workspaces). `None` = unbounded (metering
    /// still runs, admission never refuses on pages).
    pub page_budget: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 256,
            batch_window: Duration::from_micros(200),
            max_batch: 16,
            plan_cache_capacity: 32,
            plan_store: None,
            default_deadline: None,
            priority_weights: Priority::DEFAULT_WEIGHTS,
            tenant_quota: None,
            page_bytes: DEFAULT_PAGE_BYTES,
            page_budget: None,
        }
    }
}

/// Builder for [`Engine`] — the single construction path.
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    /// Number of worker threads (0 = inline [`Engine::run_until_idle`]
    /// mode).
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Bounded queue capacity (must be ≥ 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.config.queue_capacity = n;
        self
    }

    /// Micro-batch coalescing window.
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.config.batch_window = window;
        self
    }

    /// Maximum batch size (must be ≥ 1).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.config.max_batch = n;
        self
    }

    /// Plan cache capacity (must be ≥ 1).
    pub fn plan_cache_capacity(mut self, n: usize) -> Self {
        self.config.plan_cache_capacity = n;
        self
    }

    /// Back the plan cache with a persistent [`PlanStore`] at `dir`:
    /// built plans are saved there, and a restarted engine warm-starts
    /// by rehydrating them instead of re-running preprocessing.
    pub fn plan_store(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.plan_store = Some(dir.into());
        self
    }

    /// Default per-request deadline.
    pub fn default_deadline(mut self, d: Duration) -> Self {
        self.config.default_deadline = Some(d);
        self
    }

    /// Weighted-fair dequeue weights (Interactive : Standard : Batch);
    /// each is clamped to ≥ 1.
    pub fn priority_weights(mut self, weights: [u64; Priority::COUNT]) -> Self {
        self.config.priority_weights = weights;
        self
    }

    /// Per-tenant queued-request quota (must be ≥ 1).
    pub fn tenant_quota(mut self, n: usize) -> Self {
        self.config.tenant_quota = Some(n);
        self
    }

    /// Page size of the paged workspace allocator (must be ≥ 1).
    pub fn page_bytes(mut self, n: usize) -> Self {
        self.config.page_bytes = n;
        self
    }

    /// Hard page budget for staged memory (must be ≥ 1). Submissions
    /// whose operand + output staging cannot fit are refused with a
    /// `retry_after` hint.
    pub fn page_budget(mut self, pages: usize) -> Self {
        self.config.page_budget = Some(pages);
        self
    }

    /// Validate the configuration and start the worker pool.
    pub fn build(self) -> Result<Engine> {
        let c = &self.config;
        if c.queue_capacity == 0 || c.max_batch == 0 || c.plan_cache_capacity == 0 {
            return Err(SpmmError::InvalidConfig(
                "engine queue_capacity, max_batch and plan_cache_capacity must be >= 1".into(),
            ));
        }
        if c.page_bytes == 0 || c.page_budget == Some(0) || c.tenant_quota == Some(0) {
            return Err(SpmmError::InvalidConfig(
                "engine page_bytes, page_budget and tenant_quota must be >= 1".into(),
            ));
        }
        let cache = match &c.plan_store {
            Some(dir) => PlanCache::with_store(c.plan_cache_capacity, dir)?,
            None => PlanCache::new(c.plan_cache_capacity),
        };
        let shared = Arc::new(EngineShared {
            cache,
            queue: RequestQueue::new(c.queue_capacity, c.priority_weights, c.tenant_quota),
            pages: PagePool::new(c.page_bytes, c.page_budget.unwrap_or(usize::MAX)),
            metrics: Metrics::default(),
            avg_service_ns: AtomicU64::new(0),
            config: self.config.clone(),
        });
        let workers = (0..c.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spmm-engine-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn engine worker")
            })
            .collect();
        Ok(Engine { shared, workers })
    }
}

/// Monotonic engine counters, kept in-process (and mirrored to
/// `spmm-trace` when a measurement window is open).
#[derive(Debug, Default)]
struct Metrics {
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    rejected: AtomicU64,
    quota_rejected: AtomicU64,
    expired: AtomicU64,
    late_executions: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    degraded_builds: AtomicU64,
    served: [AtomicU64; Priority::COUNT],
    /// Gauge (not monotonic): requests currently executing inside a
    /// batch on some worker (or `run_until_idle` caller).
    in_flight: AtomicU64,
}

impl Metrics {
    fn bump(&self, which: &AtomicU64, trace_name: &'static str, delta: u64) {
        which.fetch_add(delta, Ordering::Relaxed);
        spmm_trace::counter_add(trace_name, delta);
    }

    fn bump_served(&self, class: Priority, delta: u64) {
        self.served[class.index()].fetch_add(delta, Ordering::Relaxed);
        let name = match class {
            Priority::Interactive => "engine.qos.served.interactive",
            Priority::Standard => "engine.qos.served.standard",
            Priority::Batch => "engine.qos.served.batch",
        };
        spmm_trace::counter_add(name, delta);
    }
}

/// A point-in-time snapshot of every engine counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineStats {
    /// Requests admitted to the queue.
    pub enqueued: u64,
    /// Requests taken off the queue (executed or expired).
    pub dequeued: u64,
    /// Submissions rejected by backpressure (full queue or page
    /// budget).
    pub rejected: u64,
    /// Submissions refused because their tenant was at quota.
    pub quota_rejected: u64,
    /// Requests dropped before execution because their deadline passed
    /// while queued ([`SpmmError::DeadlineExpired`]).
    pub timed_out: u64,
    /// Executions that *started* past their request's deadline — the
    /// deadline-scheduling invariant is that this stays 0.
    pub late_executions: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests carried inside those batches (occupancy =
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Sessions that fell back to the scalar CSR path after a
    /// tensor-core plan build failed.
    pub degraded_builds: u64,
    /// Requests executed to completion, per priority class (indexed by
    /// [`Priority::index`]).
    pub served: [u64; Priority::COUNT],
    /// Plan-cache lookups served from a ready entry.
    pub cache_hits: u64,
    /// Plan-cache lookups that required (or waited on) a build.
    pub cache_misses: u64,
    /// Plans actually built.
    pub plan_builds: u64,
    /// Plans evicted by the LRU bound.
    pub cache_evictions: u64,
    /// Cache misses served by rehydrating a persisted plan.
    pub store_hits: u64,
    /// Cache misses that found no persisted plan.
    pub store_misses: u64,
    /// Persisted plans that failed validation and degraded to a fresh
    /// build.
    pub load_fallbacks: u64,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Requests currently executing (dequeued, inside a batch, not yet
    /// completed).
    pub in_flight: u64,
    /// Pages currently charged against the page budget.
    pub pages_in_use: u64,
    /// High-water mark of `pages_in_use`.
    pub pages_peak: u64,
    /// Idle workspaces evicted to make room under the page budget.
    pub page_evictions: u64,
    /// Submissions refused for want of pages.
    pub page_denials: u64,
    /// The host SIMD tier unpinned plan builds resolve to in this
    /// process (probe result; sessions pinned via [`AccConfig::isa`]
    /// may bind a different tier — see [`Session::isa_tier`]).
    pub isa_tier: spmm_common::IsaTier,
}

struct EngineShared {
    config: EngineConfig,
    cache: PlanCache,
    queue: RequestQueue,
    pages: Arc<PagePool>,
    metrics: Metrics,
    /// EWMA of per-request service time (ns); feeds `retry_after`
    /// estimation. 0 = no sample yet ([`DEFAULT_SERVICE_NS`] assumed).
    avg_service_ns: AtomicU64,
}

impl EngineShared {
    /// Estimate how long a rejected caller should wait before retrying:
    /// the backlog ahead of them divided across the workers, at the
    /// measured (EWMA) per-request service time, clamped to
    /// `[100 µs, 10 s]`.
    fn estimate_retry_after(&self, backlog: u64) -> Duration {
        let avg = match self.avg_service_ns.load(Ordering::Relaxed) {
            0 => DEFAULT_SERVICE_NS,
            ns => ns,
        };
        let workers = self.config.workers.max(1) as u64;
        let est = Duration::from_nanos(backlog.max(1).saturating_mul(avg) / workers);
        est.clamp(RETRY_AFTER_MIN, RETRY_AFTER_MAX)
    }

    /// Fold one per-request service-time sample into the EWMA
    /// (α = 1/4, integer arithmetic).
    fn record_service_time(&self, per_request: Duration) {
        let sample = per_request.as_nanos().min(u128::from(u64::MAX)) as i64;
        let old = self.avg_service_ns.load(Ordering::Relaxed) as i64;
        let new = if old == 0 {
            sample
        } else {
            old + (sample - old) / 4
        };
        self.avg_service_ns
            .store(new.max(1) as u64, Ordering::Relaxed);
    }
}

/// The serving engine: a plan cache plus a QoS queue, paged workspace
/// allocator, and micro-batching worker pool.
///
/// Thread-safe by construction — share it behind an `Arc` (or just
/// open [`Session`]s, which are `Clone + Send + Sync` and keep the
/// engine's shared state alive). Dropping the engine shuts the queue
/// down, drains already-queued requests, and joins the workers.
pub struct Engine {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Start building an engine (see [`EngineBuilder`] for the knobs).
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Start configuring a session over operand `a`.
    pub fn session<'e, 'a>(&'e self, a: &'a CsrMatrix) -> SessionBuilder<'e, 'a> {
        SessionBuilder {
            engine: &self.shared,
            a,
            kind: KernelKind::AccSpmm,
            arch: Arch::A800,
            feature_dim: 128,
            config: AccConfig::full(),
        }
    }

    /// Adopt an externally-prepared kernel as a ready cache entry and
    /// open a session on it — no rebuild, immediate cache hits for
    /// every later `session()` with the same identity.
    pub fn install(&self, prepared: PreparedKernel) -> Session {
        let plan = Arc::new(prepared);
        let key = PlanKey {
            fingerprint: plan.execution_plan().input_fingerprint(),
            kind: plan.kind(),
            arch: plan.execution_plan().arch(),
            feature_dim: plan.feature_dim(),
            config: *plan.execution_plan().config(),
        };
        self.shared.cache.install(key, Arc::clone(&plan));
        Session {
            engine: Arc::clone(&self.shared),
            key,
            plan,
            degraded: false,
        }
    }

    /// Snapshot every counter (works with tracing disabled).
    pub fn stats(&self) -> EngineStats {
        let m = &self.shared.metrics;
        let c = self.shared.cache.stats();
        let p = self.shared.pages.stats();
        EngineStats {
            enqueued: m.enqueued.load(Ordering::Relaxed),
            dequeued: m.dequeued.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            quota_rejected: m.quota_rejected.load(Ordering::Relaxed),
            timed_out: m.expired.load(Ordering::Relaxed),
            late_executions: m.late_executions.load(Ordering::Relaxed),
            batches: m.batches.load(Ordering::Relaxed),
            batched_requests: m.batched_requests.load(Ordering::Relaxed),
            degraded_builds: m.degraded_builds.load(Ordering::Relaxed),
            served: [
                m.served[0].load(Ordering::Relaxed),
                m.served[1].load(Ordering::Relaxed),
                m.served[2].load(Ordering::Relaxed),
            ],
            cache_hits: c.hits,
            cache_misses: c.misses,
            plan_builds: c.builds,
            cache_evictions: c.evictions,
            store_hits: c.store_hits,
            store_misses: c.store_misses,
            load_fallbacks: c.load_fallbacks,
            queue_depth: self.shared.queue.len() as u64,
            in_flight: m.in_flight.load(Ordering::Relaxed),
            pages_in_use: p.in_use as u64,
            pages_peak: p.peak as u64,
            page_evictions: p.evictions,
            page_denials: p.denials,
            isa_tier: spmm_common::IsaTier::probe(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// The paged workspace allocator's accounting snapshot.
    pub fn page_stats(&self) -> PageStats {
        self.shared.pages.stats()
    }

    /// Drive a zero-worker engine inline until its queue is empty:
    /// repeatedly pop (by the same weighted fair schedule the workers
    /// use), coalesce a micro-batch, execute or expire it on the
    /// calling thread. Returns the number of requests resolved.
    ///
    /// **Determinism:** with `workers = 0`, every effect happens on the
    /// calling thread in schedule order — no background threads, no
    /// racing clocks — so tests and single-threaded embeddings get
    /// reproducible interleavings. Calls from a worker-ful engine are
    /// allowed and simply steal work inline.
    pub fn run_until_idle(&self) -> usize {
        let mut total = 0;
        loop {
            let n = self.step();
            if n == 0 {
                return total;
            }
            total += n;
        }
    }

    fn step(&self) -> usize {
        let Some(first) = self.shared.queue.try_pop() else {
            return 0;
        };
        let mut ws = self.shared.pages.checkout();
        run_batch(&self.shared, first, &mut ws)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.queue.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Zero-worker engines may still hold queued requests: fail them
        // so no ticket waits forever. Dropping each request's lease
        // releases its pages.
        while let Some(req) = self.shared.queue.try_pop() {
            self.shared
                .metrics
                .bump(&self.shared.metrics.dequeued, "engine.dequeued", 1);
            req.ticket.complete(
                Err(SpmmError::Capacity {
                    what: "engine (shut down)",
                    capacity: 0,
                }),
                None,
            );
        }
    }
}

/// Configures one serving session; created by [`Engine::session`].
#[derive(Clone)]
pub struct SessionBuilder<'e, 'a> {
    engine: &'e Arc<EngineShared>,
    a: &'a CsrMatrix,
    kind: KernelKind,
    arch: Arch,
    feature_dim: usize,
    config: AccConfig,
}

impl SessionBuilder<'_, '_> {
    /// Kernel strategy to serve (default [`KernelKind::AccSpmm`]).
    pub fn kind(mut self, kind: KernelKind) -> Self {
        self.kind = kind;
        self
    }

    /// Target architecture.
    pub fn arch(mut self, arch: Arch) -> Self {
        self.arch = arch;
        self
    }

    /// Feature dimension the plan is specialized for.
    pub fn feature_dim(mut self, n: usize) -> Self {
        self.feature_dim = n;
        self
    }

    /// Acc ablation configuration.
    pub fn config(mut self, config: AccConfig) -> Self {
        self.config = config;
        self
    }

    /// Resolve the plan through the shared cache (building it at most
    /// once across all concurrent callers) and open the session.
    ///
    /// If a *tensor-core* plan fails to build, the session degrades to
    /// the scalar CSR path ([`KernelKind::CusparseLike`]) rather than
    /// failing — check [`Session::is_degraded`]. The degraded plan goes
    /// through the cache under its own key, so later sessions reuse it.
    pub fn open(self) -> Result<Session> {
        let fingerprint = self.a.content_fingerprint();
        let key = PlanKey {
            fingerprint,
            kind: self.kind,
            arch: self.arch,
            feature_dim: self.feature_dim,
            config: self.config,
        };
        let build = |kind: KernelKind| {
            PreparedKernel::builder(kind, self.a)
                .arch(self.arch)
                .feature_dim(self.feature_dim)
                .config(self.config)
                .build()
        };
        match self.engine.cache.get_or_build(key, || build(self.kind)) {
            Ok(plan) => Ok(Session {
                engine: Arc::clone(self.engine),
                key,
                plan,
                degraded: false,
            }),
            Err(err) if self.kind.uses_tensor_cores() => {
                // Graceful degradation: serve the request stream on the
                // scalar CSR path instead of failing the client.
                self.engine.metrics.bump(
                    &self.engine.metrics.degraded_builds,
                    "engine.degraded_builds",
                    1,
                );
                let fallback = PlanKey {
                    kind: KernelKind::CusparseLike,
                    ..key
                };
                let plan = self
                    .engine
                    .cache
                    .get_or_build(fallback, || build(KernelKind::CusparseLike))
                    .map_err(|_| err)?; // degraded path also failed: report the original
                Ok(Session {
                    engine: Arc::clone(self.engine),
                    key: fallback,
                    plan,
                    degraded: true,
                })
            }
            Err(err) => Err(err),
        }
    }
}

/// The outcome of a submission ([`Session::submit`]).
#[must_use]
#[non_exhaustive]
pub enum SubmitOutcome {
    /// Queued; redeem the ticket for the result.
    Accepted(Ticket),
    /// Admission control refused the request: backpressure (full queue
    /// or page budget), a tenant at quota, or a shut-down engine. The
    /// operand comes back so the caller can retry.
    Rejected {
        /// The dense operand, returned unchanged.
        operand: DenseMatrix,
        /// When a retry is expected to succeed, estimated from the
        /// backlog and the measured service rate. `None` when retrying
        /// cannot help (shape mismatch, shut-down engine).
        retry_after: Option<Duration>,
        /// The typed refusal ([`SpmmError::Capacity`],
        /// [`SpmmError::QuotaExceeded`], or a shape error).
        reason: SpmmError,
    },
}

impl SubmitOutcome {
    /// Collapse into a `Result`, discarding the returned operand and
    /// `retry_after` hint — convenient when rejection is just an error.
    pub fn into_result(self) -> Result<Ticket> {
        match self {
            SubmitOutcome::Accepted(t) => Ok(t),
            SubmitOutcome::Rejected { reason, .. } => Err(reason),
        }
    }
}

/// A client's binding to one cached plan — cheap to clone, safe to
/// share across threads, keeps the engine's shared state (queue,
/// cache, workers' data) alive.
#[derive(Clone)]
pub struct Session {
    engine: Arc<EngineShared>,
    key: PlanKey,
    plan: Arc<PreparedKernel>,
    degraded: bool,
}

impl Session {
    /// The cache key this session's requests coalesce under.
    pub fn key(&self) -> PlanKey {
        self.key
    }

    /// The SIMD tier this session's plan bound at compile time.
    pub fn isa_tier(&self) -> spmm_common::IsaTier {
        self.plan.execution_plan().isa_tier()
    }

    /// The shared prepared kernel (for inspection/profiling).
    pub fn plan(&self) -> &Arc<PreparedKernel> {
        &self.plan
    }

    /// Whether the session fell back to the scalar CSR path.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Apply a dynamic-graph edge delta to this session's operand:
    /// repair the plan incrementally (reusing the reorder permutation
    /// and all untouched format windows — see
    /// [`ExecutionPlan::repair`](spmm_kernels::ExecutionPlan)),
    /// invalidate the superseded matrix's plans in the shared cache and
    /// persistent store (plans for other matrices stay resident), and
    /// rebind the session to the repaired plan under its new
    /// fingerprint. The repaired plan is installed in the cache (and
    /// written through to the store as IR), so concurrent sessions on
    /// the updated matrix share it.
    ///
    /// The delta's base must be the operand this session's plan was
    /// built from. A clean delta is a no-op: nothing is invalidated,
    /// the session keeps its plan. In-flight requests already hold an
    /// `Arc` to the old plan and complete against it; requests
    /// submitted after this call see the updated operand.
    pub fn apply_delta(&mut self, delta: &spmm_delta::DeltaCsr) -> Result<RepairReport> {
        let (repaired, report) = self.plan.execution_plan().repair(delta)?;
        if delta.is_clean() {
            return Ok(report);
        }
        let old_fingerprint = self.key.fingerprint;
        let new_key = PlanKey {
            fingerprint: repaired.input_fingerprint(),
            ..self.key
        };
        let plan = Arc::new(PreparedKernel::from_plan(repaired));
        self.engine.cache.invalidate_matrix(old_fingerprint);
        self.engine.cache.install(new_key, Arc::clone(&plan));
        self.key = new_key;
        self.plan = plan;
        spmm_trace::counter_add("engine.deltas_applied", 1);
        spmm_trace::counter_add("engine.delta_edges", report.edges_applied as u64);
        Ok(report)
    }

    /// Submit a multiply with explicit QoS options — the single
    /// submission surface (priority class, tenant, deadline all ride in
    /// [`SubmitOptions`]; `SubmitOptions::new()` gives the defaults).
    ///
    /// Admission control runs entirely on the calling thread: shape
    /// validation, page-budget leasing for the operand + output
    /// staging, the tenant quota, and queue backpressure. A refusal
    /// comes back as [`SubmitOutcome::Rejected`] with the operand and a
    /// `retry_after` hint — no blocking, no panics.
    pub fn submit(&self, b: DenseMatrix, opts: SubmitOptions) -> SubmitOutcome {
        let (priority, tenant, deadline) = opts.into_parts();
        self.submit_inner(
            b,
            priority,
            tenant,
            deadline.or(self.engine.config.default_deadline),
        )
    }

    /// Synchronous convenience: submit with default options and wait.
    /// Mirrors [`PreparedKernel::execute`] semantics (same bit-exact
    /// results), routed through the shared queue and micro-batcher.
    pub fn multiply(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        self.submit(b.clone(), SubmitOptions::new())
            .into_result()?
            .wait()
    }

    fn submit_inner(
        &self,
        b: DenseMatrix,
        priority: Priority,
        tenant: Tenant,
        deadline: Option<Duration>,
    ) -> SubmitOutcome {
        // Validate the shape *before* queueing so malformed requests
        // fail fast on the client thread.
        let a_cols = self.plan.csr().ncols();
        if b.nrows() != a_cols {
            return SubmitOutcome::Rejected {
                reason: SpmmError::shape(format!(
                    "A is {}x{}, B is {}x{}",
                    self.plan.csr().nrows(),
                    a_cols,
                    b.nrows(),
                    b.ncols()
                )),
                retry_after: None,
                operand: b,
            };
        }
        // Lease pages for the staging this request will pin: the
        // operand copy (alive until executed) plus the output buffer
        // (alive until the result is taken). Both sizes are exact at
        // submit time, so over-budget work is refused here, never
        // blocked mid-execution.
        let f32s = std::mem::size_of::<f32>();
        let operand_bytes = b.nrows() * b.ncols() * f32s;
        let output_bytes = self.plan.csr().nrows() * b.ncols() * f32s;
        let lease = match self.engine.pages.try_lease(operand_bytes + output_bytes) {
            Some(lease) => lease,
            None => {
                let m = &self.engine.metrics;
                m.bump(&m.rejected, "engine.rejected", 1);
                return SubmitOutcome::Rejected {
                    operand: b,
                    retry_after: Some(
                        self.engine
                            .estimate_retry_after(self.engine.queue.len() as u64),
                    ),
                    reason: SpmmError::Capacity {
                        what: "engine page budget",
                        capacity: self.engine.pages.budget(),
                    },
                };
            }
        };
        let ticket = TicketShared::new();
        let req = Request {
            key: self.key,
            plan: Arc::clone(&self.plan),
            b,
            ticket: Arc::clone(&ticket),
            priority,
            tenant,
            enqueued_at: Instant::now(),
            deadline: deadline.map(|d| Instant::now() + d),
            lease: Some(lease),
        };
        let m = &self.engine.metrics;
        match self.engine.queue.try_push(req) {
            Push::Ok => {
                m.bump(&m.enqueued, "engine.enqueued", 1);
                SubmitOutcome::Accepted(Ticket { shared: ticket })
            }
            Push::Quota { req, queued } => {
                m.bump(&m.quota_rejected, "engine.qos.quota_rejected", 1);
                let retry_after = self.engine.estimate_retry_after(queued as u64);
                SubmitOutcome::Rejected {
                    reason: SpmmError::QuotaExceeded {
                        tenant: req.tenant.name().to_string(),
                        retry_after,
                    },
                    retry_after: Some(retry_after),
                    operand: req.b,
                }
            }
            Push::Full(req) => {
                m.bump(&m.rejected, "engine.rejected", 1);
                SubmitOutcome::Rejected {
                    retry_after: Some(
                        self.engine
                            .estimate_retry_after(self.engine.queue.capacity() as u64),
                    ),
                    operand: req.b,
                    reason: SpmmError::Capacity {
                        what: "engine queue",
                        capacity: self.engine.queue.capacity(),
                    },
                }
            }
            Push::ShutDown(req) => SubmitOutcome::Rejected {
                operand: req.b,
                retry_after: None,
                reason: SpmmError::Capacity {
                    what: "engine (shut down)",
                    capacity: 0,
                },
            },
        }
    }
}

/// Worker thread body: pop → coalesce → execute, until shutdown. The
/// workspace is checked out per batch so idle workspaces live in the
/// page pool's LRU cache (evictable under budget pressure) rather than
/// pinned to a parked thread.
fn worker_loop(shared: &Arc<EngineShared>) {
    while let Some(first) = shared.queue.pop_blocking() {
        let mut ws = shared.pages.checkout();
        run_batch(shared, first, &mut ws);
    }
}

/// Coalesce a micro-batch seeded by `first`, expire late requests, and
/// execute the rest in one batched kernel call. Returns requests
/// resolved.
fn run_batch(shared: &Arc<EngineShared>, first: Request, ws: &mut Workspace) -> usize {
    let m = &shared.metrics;
    let mut batch = vec![first];
    if shared.config.max_batch > 1 {
        let key = batch[0].key;
        let window_deadline = Instant::now() + shared.config.batch_window;
        shared.queue.drain_same_key(
            &key,
            shared.config.max_batch - 1,
            window_deadline,
            &mut batch,
        );
    }
    m.bump(&m.dequeued, "engine.dequeued", batch.len() as u64);

    // Deadline-aware scheduling: requests whose deadline passed while
    // they queued are dropped here, *before* any kernel work, with the
    // actual queued duration in the error.
    let now = Instant::now();
    let (expired, live): (Vec<Request>, Vec<Request>) = batch
        .into_iter()
        .partition(|r| r.deadline.is_some_and(|d| now > d));
    let resolved = expired.len() + live.len();
    for req in expired {
        m.bump(&m.expired, "engine.qos.expired", 1);
        // Dropping the request's lease releases both the operand and
        // output pages — nothing of an expired request stays charged.
        req.ticket.complete(
            Err(SpmmError::DeadlineExpired {
                waited: now.duration_since(req.enqueued_at),
            }),
            None,
        );
    }
    if live.is_empty() {
        return resolved;
    }

    // Invariant check: nothing past its deadline may reach a kernel.
    // The partition above just ran, so this counter staying 0 is the
    // observable form of "expired work never executes".
    let exec_start = Instant::now();
    let late = live
        .iter()
        .filter(|r| r.deadline.is_some_and(|d| exec_start > d))
        .count() as u64;
    if late > 0 {
        m.bump(&m.late_executions, "engine.qos.late_executions", late);
    }

    m.bump(&m.batches, "engine.batches", 1);
    m.bump(
        &m.batched_requests,
        "engine.batched_requests",
        live.len() as u64,
    );
    let _span = spmm_trace::span("engine.batch_execute");

    let plan = Arc::clone(&live[0].plan);
    let nrows = plan.csr().nrows();
    let live_count = live.len() as u64;
    m.in_flight.fetch_add(live_count, Ordering::Relaxed);
    let mut bs = Vec::with_capacity(live.len());
    let mut tickets = Vec::with_capacity(live.len());
    let mut leases: Vec<(Option<PageLease>, usize, Priority)> = Vec::with_capacity(live.len());
    for mut r in live {
        let operand_pages = shared
            .pages
            .pages_for(r.b.nrows() * r.b.ncols() * std::mem::size_of::<f32>());
        leases.push((r.lease.take(), operand_pages, r.priority));
        tickets.push(r.ticket);
        bs.push(r.b);
    }
    let mut outs: Vec<DenseMatrix> = bs
        .iter()
        .map(|b| DenseMatrix::zeros(nrows, b.ncols()))
        .collect();
    let result = plan.execute_batch_into(&bs, &mut outs, ws);
    drop(bs); // operand copies freed; their page charge is split off below
    match result {
        Ok(()) => {
            for ((ticket, out), (lease, operand_pages, priority)) in
                tickets.into_iter().zip(outs).zip(leases)
            {
                // Split the admission lease: the operand half is
                // released now, the output half rides with the ticket
                // until the caller takes the result.
                let output_lease = lease.map(|l| l.split(operand_pages).1);
                m.bump_served(priority, 1);
                ticket.complete(Ok(out), output_lease);
            }
        }
        Err(e) => {
            for (ticket, (lease, _, _)) in tickets.into_iter().zip(leases) {
                drop(lease); // no output retained on failure
                ticket.complete(Err(e.clone()), None);
            }
        }
    }
    m.in_flight.fetch_sub(live_count, Ordering::Relaxed);
    shared.record_service_time(exec_start.elapsed() / live_count.max(1) as u32);
    resolved
}
