//! # spmm-engine — a concurrent serving layer for Acc-SpMM
//!
//! The paper's deployment regime (§5) preprocesses a sparse matrix once
//! and multiplies it against thousands of dense operands. This crate
//! turns that pattern into a *service*: many concurrent clients, a
//! shared stock of preprocessing artifacts, and explicit robustness
//! semantics under load.
//!
//! Three cooperating pieces:
//!
//! * **Plan cache** ([`cache::PlanCache`]) — bounded LRU keyed by
//!   matrix content fingerprint + kernel + [`Arch`] + feature dim +
//!   [`AccConfig`]. Concurrent sessions for the same operand share one
//!   [`PreparedKernel`] behind an `Arc`; a per-key in-flight guard makes
//!   N simultaneous first-lookups run exactly one build.
//! * **Micro-batching worker pool** — submitted multiplies land in a
//!   bounded queue; workers coalesce same-key requests (up to
//!   `max_batch`, waiting at most `batch_window` for stragglers) into a
//!   single [`PreparedKernel::execute_batch_into`] call, which decodes
//!   each compressed block once for the whole batch and reuses a
//!   per-worker [`Workspace`] for a zero-alloc steady state.
//! * **Robustness semantics** — a full queue *rejects* immediately
//!   ([`Submit::Rejected`], typed as [`SpmmError::Capacity`]);
//!   per-request deadlines expire queued work ([`SpmmError::Timeout`]);
//!   and when a tensor-core plan fails to build, the session degrades
//!   gracefully to the scalar CSR path (cuSPARSE-like kernel) instead
//!   of failing the client.
//!
//! Everything is observable through `spmm-trace` counters
//! (`engine.enqueued` / `engine.dequeued` for queue depth,
//! `engine.batches` / `engine.batched_requests` for occupancy,
//! `engine.cache_hits` / `engine.cache_misses`, `engine.rejected`,
//! `engine.timed_out`, `engine.degraded_builds`) and the in-process
//! [`EngineStats`] snapshot, which works even with tracing disabled.
//!
//! ```
//! use spmm_engine::Engine;
//! use spmm_kernels::KernelKind;
//! use spmm_matrix::{gen, DenseMatrix};
//!
//! let engine = Engine::builder().workers(2).build().unwrap();
//! let a = gen::uniform_random(256, 6.0, 42);
//! let session = engine.session(&a).feature_dim(32).open().unwrap();
//!
//! // Synchronous round trip...
//! let b = DenseMatrix::random(256, 32, 7);
//! let c = session.multiply(&b).unwrap();
//! assert_eq!(c.nrows(), 256);
//!
//! // ...or pipelined: submit now, redeem later.
//! let ticket = session.submit(b.clone()).unwrap();
//! assert_eq!(ticket.wait().unwrap(), c);
//! assert_eq!(engine.stats().cache_misses, 1);
//! ```

pub mod cache;
pub mod queue;
pub mod store;

pub use cache::{CacheStats, PlanCache, PlanKey};
pub use queue::Ticket;
pub use store::PlanStore;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spmm_common::{Result, SpmmError};
use spmm_kernels::{AccConfig, KernelKind, PreparedKernel, Workspace, WorkspacePool};
use spmm_matrix::{CsrMatrix, DenseMatrix};
use spmm_sim::Arch;

use queue::{Push, Request, RequestQueue, TicketShared};

/// Tunables for [`Engine`]; construct via [`Engine::builder`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing queued multiplies. `0` is allowed: no
    /// background threads; drive the engine inline with
    /// [`Engine::poll`] (single-threaded embeddings and tests).
    pub workers: usize,
    /// Bounded queue length; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// How long a worker waits for same-key stragglers before running a
    /// short batch.
    pub batch_window: Duration,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Plans the LRU cache retains.
    pub plan_cache_capacity: usize,
    /// Directory of persisted plans backing the cache, if any —
    /// built plans are written through, and restarts rehydrate from it
    /// instead of re-running the preprocessing pipeline.
    pub plan_store: Option<std::path::PathBuf>,
    /// Deadline applied to every request that doesn't carry its own.
    pub default_deadline: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 256,
            batch_window: Duration::from_micros(200),
            max_batch: 16,
            plan_cache_capacity: 32,
            plan_store: None,
            default_deadline: None,
        }
    }
}

/// Builder for [`Engine`] — the single construction path.
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    /// Number of worker threads (0 = inline [`Engine::poll`] mode).
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Bounded queue capacity (must be ≥ 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.config.queue_capacity = n;
        self
    }

    /// Micro-batch coalescing window.
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.config.batch_window = window;
        self
    }

    /// Maximum batch size (must be ≥ 1).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.config.max_batch = n;
        self
    }

    /// Plan cache capacity (must be ≥ 1).
    pub fn plan_cache_capacity(mut self, n: usize) -> Self {
        self.config.plan_cache_capacity = n;
        self
    }

    /// Back the plan cache with a persistent [`PlanStore`] at `dir`:
    /// built plans are saved there, and a restarted engine warm-starts
    /// by rehydrating them instead of re-running preprocessing.
    pub fn plan_store(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.plan_store = Some(dir.into());
        self
    }

    /// Default per-request deadline.
    pub fn default_deadline(mut self, d: Duration) -> Self {
        self.config.default_deadline = Some(d);
        self
    }

    /// Validate the configuration and start the worker pool.
    pub fn build(self) -> Result<Engine> {
        let c = &self.config;
        if c.queue_capacity == 0 || c.max_batch == 0 || c.plan_cache_capacity == 0 {
            return Err(SpmmError::InvalidConfig(
                "engine queue_capacity, max_batch and plan_cache_capacity must be >= 1".into(),
            ));
        }
        let cache = match &c.plan_store {
            Some(dir) => PlanCache::with_store(c.plan_cache_capacity, dir)?,
            None => PlanCache::new(c.plan_cache_capacity),
        };
        let shared = Arc::new(EngineShared {
            config: self.config.clone(),
            cache,
            queue: RequestQueue::new(c.queue_capacity),
            // Workspaces now retain a TF32-rounded B stage (an extra
            // operand-sized buffer each), so the idle pool is bounded at
            // one spare per worker plus one for `poll()` callers instead
            // of the former 2×(workers+1): concurrency never needs more
            // than one workspace per executing thread, and each retained
            // workspace is heavier than before.
            pool: WorkspacePool::new(c.workers + 1),
            metrics: Metrics::default(),
        });
        let workers = (0..c.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spmm-engine-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn engine worker")
            })
            .collect();
        Ok(Engine { shared, workers })
    }
}

/// Monotonic engine counters, kept in-process (and mirrored to
/// `spmm-trace` when a measurement window is open).
#[derive(Debug, Default)]
struct Metrics {
    enqueued: AtomicU64,
    dequeued: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    degraded_builds: AtomicU64,
    /// Gauge (not monotonic): requests currently executing inside a
    /// batch on some worker (or `poll()` caller).
    in_flight: AtomicU64,
}

impl Metrics {
    fn bump(&self, which: &AtomicU64, trace_name: &'static str, delta: u64) {
        which.fetch_add(delta, Ordering::Relaxed);
        spmm_trace::counter_add(trace_name, delta);
    }
}

/// A point-in-time snapshot of every engine counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineStats {
    /// Requests admitted to the queue.
    pub enqueued: u64,
    /// Requests taken off the queue (executed or expired).
    pub dequeued: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Requests dropped because their deadline passed while queued.
    pub timed_out: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests carried inside those batches (occupancy =
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Sessions that fell back to the scalar CSR path after a
    /// tensor-core plan build failed.
    pub degraded_builds: u64,
    /// Plan-cache lookups served from a ready entry.
    pub cache_hits: u64,
    /// Plan-cache lookups that required (or waited on) a build.
    pub cache_misses: u64,
    /// Plans actually built.
    pub plan_builds: u64,
    /// Plans evicted by the LRU bound.
    pub cache_evictions: u64,
    /// Cache misses served by rehydrating a persisted plan.
    pub store_hits: u64,
    /// Cache misses that found no persisted plan.
    pub store_misses: u64,
    /// Persisted plans that failed validation and degraded to a fresh
    /// build.
    pub load_fallbacks: u64,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Requests currently executing (dequeued, inside a batch, not yet
    /// completed).
    pub in_flight: u64,
}

struct EngineShared {
    config: EngineConfig,
    cache: PlanCache,
    queue: RequestQueue,
    pool: WorkspacePool,
    metrics: Metrics,
}

/// The serving engine: a plan cache plus a micro-batching worker pool.
///
/// Thread-safe by construction — share it behind an `Arc` (or just
/// open [`Session`]s, which are `Clone + Send + Sync` and keep the
/// engine's shared state alive). Dropping the engine shuts the queue
/// down, drains already-queued requests, and joins the workers.
pub struct Engine {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Start building an engine (see [`EngineBuilder`] for the knobs).
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Start configuring a session over operand `a`.
    pub fn session<'e, 'a>(&'e self, a: &'a CsrMatrix) -> SessionBuilder<'e, 'a> {
        SessionBuilder {
            engine: &self.shared,
            a,
            kind: KernelKind::AccSpmm,
            arch: Arch::A800,
            feature_dim: 128,
            config: AccConfig::full(),
        }
    }

    /// Adopt an externally-prepared kernel as a ready cache entry and
    /// open a session on it — no rebuild, immediate cache hits for
    /// every later `session()` with the same identity.
    pub fn install(&self, prepared: PreparedKernel) -> Session {
        let plan = Arc::new(prepared);
        let key = PlanKey {
            fingerprint: plan.execution_plan().input_fingerprint(),
            kind: plan.kind(),
            arch: plan.execution_plan().arch(),
            feature_dim: plan.feature_dim(),
            config: *plan.execution_plan().config(),
        };
        self.shared.cache.install(key, Arc::clone(&plan));
        Session {
            engine: Arc::clone(&self.shared),
            key,
            plan,
            degraded: false,
        }
    }

    /// Snapshot every counter (works with tracing disabled).
    pub fn stats(&self) -> EngineStats {
        let m = &self.shared.metrics;
        let c = self.shared.cache.stats();
        EngineStats {
            enqueued: m.enqueued.load(Ordering::Relaxed),
            dequeued: m.dequeued.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            timed_out: m.timed_out.load(Ordering::Relaxed),
            batches: m.batches.load(Ordering::Relaxed),
            batched_requests: m.batched_requests.load(Ordering::Relaxed),
            degraded_builds: m.degraded_builds.load(Ordering::Relaxed),
            cache_hits: c.hits,
            cache_misses: c.misses,
            plan_builds: c.builds,
            cache_evictions: c.evictions,
            store_hits: c.store_hits,
            store_misses: c.store_misses,
            load_fallbacks: c.load_fallbacks,
            queue_depth: self.shared.queue.len() as u64,
            in_flight: m.in_flight.load(Ordering::Relaxed),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// Inline worker step for zero-worker engines (and deterministic
    /// tests): pop one request, coalesce its micro-batch, execute or
    /// expire it on the calling thread. Returns the number of requests
    /// resolved (0 when the queue was empty).
    pub fn poll(&self) -> usize {
        let Some(first) = self.shared.queue.try_pop() else {
            return 0;
        };
        let mut ws = self.shared.pool.checkout();
        let n = run_batch(&self.shared, first, &mut ws);
        self.shared.pool.restore(ws);
        n
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.queue.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Zero-worker engines may still hold queued requests: fail them
        // so no ticket waits forever.
        while let Some(req) = self.shared.queue.try_pop() {
            self.shared
                .metrics
                .bump(&self.shared.metrics.dequeued, "engine.dequeued", 1);
            req.ticket.complete(Err(SpmmError::Capacity {
                what: "engine (shut down)",
                capacity: 0,
            }));
        }
    }
}

/// Configures one serving session; created by [`Engine::session`].
#[derive(Clone)]
pub struct SessionBuilder<'e, 'a> {
    engine: &'e Arc<EngineShared>,
    a: &'a CsrMatrix,
    kind: KernelKind,
    arch: Arch,
    feature_dim: usize,
    config: AccConfig,
}

impl SessionBuilder<'_, '_> {
    /// Kernel strategy to serve (default [`KernelKind::AccSpmm`]).
    pub fn kind(mut self, kind: KernelKind) -> Self {
        self.kind = kind;
        self
    }

    /// Target architecture.
    pub fn arch(mut self, arch: Arch) -> Self {
        self.arch = arch;
        self
    }

    /// Feature dimension the plan is specialized for.
    pub fn feature_dim(mut self, n: usize) -> Self {
        self.feature_dim = n;
        self
    }

    /// Acc ablation configuration.
    pub fn config(mut self, config: AccConfig) -> Self {
        self.config = config;
        self
    }

    /// Resolve the plan through the shared cache (building it at most
    /// once across all concurrent callers) and open the session.
    ///
    /// If a *tensor-core* plan fails to build, the session degrades to
    /// the scalar CSR path ([`KernelKind::CusparseLike`]) rather than
    /// failing — check [`Session::is_degraded`]. The degraded plan goes
    /// through the cache under its own key, so later sessions reuse it.
    pub fn open(self) -> Result<Session> {
        let fingerprint = self.a.content_fingerprint();
        let key = PlanKey {
            fingerprint,
            kind: self.kind,
            arch: self.arch,
            feature_dim: self.feature_dim,
            config: self.config,
        };
        let build = |kind: KernelKind| {
            PreparedKernel::builder(kind, self.a)
                .arch(self.arch)
                .feature_dim(self.feature_dim)
                .config(self.config)
                .build()
        };
        match self.engine.cache.get_or_build(key, || build(self.kind)) {
            Ok(plan) => Ok(Session {
                engine: Arc::clone(self.engine),
                key,
                plan,
                degraded: false,
            }),
            Err(err) if self.kind.uses_tensor_cores() => {
                // Graceful degradation: serve the request stream on the
                // scalar CSR path instead of failing the client.
                self.engine.metrics.bump(
                    &self.engine.metrics.degraded_builds,
                    "engine.degraded_builds",
                    1,
                );
                let fallback = PlanKey {
                    kind: KernelKind::CusparseLike,
                    ..key
                };
                let plan = self
                    .engine
                    .cache
                    .get_or_build(fallback, || build(KernelKind::CusparseLike))
                    .map_err(|_| err)?; // degraded path also failed: report the original
                Ok(Session {
                    engine: Arc::clone(self.engine),
                    key: fallback,
                    plan,
                    degraded: true,
                })
            }
            Err(err) => Err(err),
        }
    }
}

/// The outcome of a non-blocking submission ([`Session::try_submit`]).
#[must_use]
pub enum Submit {
    /// Queued; redeem the ticket for the result.
    Accepted(Ticket),
    /// Backpressure: the bounded queue (or a shut-down engine) refused
    /// the request. The operand comes back so the caller can retry.
    Rejected {
        /// The dense operand, returned unchanged.
        b: DenseMatrix,
        /// Why ([`SpmmError::Capacity`]).
        reason: SpmmError,
    },
}

/// A client's binding to one cached plan — cheap to clone, safe to
/// share across threads, keeps the engine's shared state (queue,
/// cache, workers' data) alive.
#[derive(Clone)]
pub struct Session {
    engine: Arc<EngineShared>,
    key: PlanKey,
    plan: Arc<PreparedKernel>,
    degraded: bool,
}

impl Session {
    /// The cache key this session's requests coalesce under.
    pub fn key(&self) -> PlanKey {
        self.key
    }

    /// The shared prepared kernel (for inspection/profiling).
    pub fn plan(&self) -> &Arc<PreparedKernel> {
        &self.plan
    }

    /// Whether the session fell back to the scalar CSR path.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Submit with explicit backpressure: a full queue returns
    /// [`Submit::Rejected`] immediately (no blocking, no panics).
    pub fn try_submit(&self, b: DenseMatrix) -> Submit {
        self.submit_inner(b, self.engine.config.default_deadline)
    }

    /// Submit with a per-request deadline overriding the engine default.
    pub fn try_submit_with_deadline(&self, b: DenseMatrix, deadline: Duration) -> Submit {
        self.submit_inner(b, Some(deadline))
    }

    /// Submit, converting backpressure into an error
    /// ([`SpmmError::Capacity`]).
    pub fn submit(&self, b: DenseMatrix) -> Result<Ticket> {
        match self.try_submit(b) {
            Submit::Accepted(t) => Ok(t),
            Submit::Rejected { reason, .. } => Err(reason),
        }
    }

    /// Synchronous convenience: submit and wait. Mirrors
    /// [`PreparedKernel::execute`] semantics (same bit-exact results),
    /// routed through the shared queue and micro-batcher.
    pub fn multiply(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        self.submit(b.clone())?.wait()
    }

    fn submit_inner(&self, b: DenseMatrix, deadline: Option<Duration>) -> Submit {
        // Validate the shape *before* queueing so malformed requests
        // fail fast on the client thread.
        let a_cols = self.plan.csr().ncols();
        if b.nrows() != a_cols {
            return Submit::Rejected {
                reason: SpmmError::shape(format!(
                    "A is {}x{}, B is {}x{}",
                    self.plan.csr().nrows(),
                    a_cols,
                    b.nrows(),
                    b.ncols()
                )),
                b,
            };
        }
        let ticket = TicketShared::new();
        let req = Request {
            key: self.key,
            plan: Arc::clone(&self.plan),
            b,
            ticket: Arc::clone(&ticket),
            deadline: deadline.map(|d| Instant::now() + d),
        };
        match self.engine.queue.try_push(req) {
            Push::Ok => {
                self.engine
                    .metrics
                    .bump(&self.engine.metrics.enqueued, "engine.enqueued", 1);
                Submit::Accepted(Ticket { shared: ticket })
            }
            Push::Full(req) => {
                self.engine
                    .metrics
                    .bump(&self.engine.metrics.rejected, "engine.rejected", 1);
                Submit::Rejected {
                    b: req.b,
                    reason: SpmmError::Capacity {
                        what: "engine queue",
                        capacity: self.engine.queue.capacity(),
                    },
                }
            }
            Push::ShutDown(req) => Submit::Rejected {
                b: req.b,
                reason: SpmmError::Capacity {
                    what: "engine (shut down)",
                    capacity: 0,
                },
            },
        }
    }
}

/// Worker thread body: pop → coalesce → execute, until shutdown.
fn worker_loop(shared: &Arc<EngineShared>) {
    let mut ws = Workspace::new();
    while let Some(first) = shared.queue.pop_blocking() {
        run_batch(shared, first, &mut ws);
    }
}

/// Coalesce a micro-batch seeded by `first`, expire late requests, and
/// execute the rest in one batched kernel call. Returns requests
/// resolved.
fn run_batch(shared: &Arc<EngineShared>, first: Request, ws: &mut Workspace) -> usize {
    let m = &shared.metrics;
    let mut batch = vec![first];
    if shared.config.max_batch > 1 {
        let key = batch[0].key;
        let window_deadline = Instant::now() + shared.config.batch_window;
        shared.queue.drain_same_key(
            &key,
            shared.config.max_batch - 1,
            window_deadline,
            &mut batch,
        );
    }
    m.bump(&m.dequeued, "engine.dequeued", batch.len() as u64);

    // Expire requests whose deadline passed while they queued.
    let now = Instant::now();
    let (expired, live): (Vec<Request>, Vec<Request>) = batch
        .into_iter()
        .partition(|r| r.deadline.is_some_and(|d| now > d));
    let resolved = expired.len() + live.len();
    for req in expired {
        m.bump(&m.timed_out, "engine.timed_out", 1);
        req.ticket.complete(Err(SpmmError::Timeout {
            what: "queued multiply request",
            waited_ms: shared
                .config
                .default_deadline
                .map_or(0, |d| d.as_millis() as u64),
        }));
    }
    if live.is_empty() {
        return resolved;
    }

    m.bump(&m.batches, "engine.batches", 1);
    m.bump(
        &m.batched_requests,
        "engine.batched_requests",
        live.len() as u64,
    );
    let _span = spmm_trace::span("engine.batch_execute");

    let plan = Arc::clone(&live[0].plan);
    let nrows = plan.csr().nrows();
    let live_count = live.len() as u64;
    m.in_flight.fetch_add(live_count, Ordering::Relaxed);
    let (bs, tickets): (Vec<DenseMatrix>, Vec<Arc<TicketShared>>) =
        live.into_iter().map(|r| (r.b, r.ticket)).unzip();
    let mut outs: Vec<DenseMatrix> = bs
        .iter()
        .map(|b| DenseMatrix::zeros(nrows, b.ncols()))
        .collect();
    match plan.execute_batch_into(&bs, &mut outs, ws) {
        Ok(()) => {
            for (ticket, out) in tickets.into_iter().zip(outs) {
                ticket.complete(Ok(out));
            }
        }
        Err(e) => {
            for ticket in tickets {
                ticket.complete(Err(e.clone()));
            }
        }
    }
    m.in_flight.fetch_sub(live_count, Ordering::Relaxed);
    resolved
}
