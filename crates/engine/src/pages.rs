//! Paged workspace allocator: fixed-size pages, a hard budget, and LRU
//! eviction of idle workspaces, so the engine's peak staging memory is
//! bounded and observable under hundreds of concurrent sessions.
//!
//! Everything the serving path stages — the dense B operand captured at
//! submit, the output buffer the kernel writes, and the worker
//! workspaces (tile scratch, TF32 B stages, permutation staging) — is
//! charged against one [`PagePool`] in units of fixed-size pages
//! (default 64 KiB). Charges happen at two points:
//!
//! * **Admission** ([`PagePool::try_lease`]): `Session::submit` leases
//!   pages for the operand copy plus the output buffer *before*
//!   enqueueing. Sizes are exactly known at submit time, so a request
//!   that would blow the budget is refused up front with a
//!   `retry_after` hint — never blocked mid-execution.
//! * **Workspace residency** ([`PagePool::checkout`]): workers borrow
//!   grown workspaces from an LRU idle list; when one is returned its
//!   footprint is re-measured and idle entries are evicted
//!   (least-recently-used first) until the returning workspace fits. If
//!   it cannot fit even with the idle list empty, it is dropped rather
//!   than retained, so the metered total never exceeds the budget.
//!
//! Transient growth *during* a kernel execution is intentionally not a
//! blocking point — a worker never stalls on pages while holding a
//! request, which would deadlock admission against progress. The
//! carve-out: a workspace's growth beyond its checkout charge is only
//! metered when it is returned. DESIGN.md §15 covers the trade-off.
//!
//! Trace counters (all monotonic):
//! `engine.pages.leased` / `engine.pages.released` — request pages in /
//! out; `engine.pages.denied` — admission refusals;
//! `engine.pages.evictions` — idle workspaces dropped to make room;
//! `engine.pages.peak` — high-water mark of total charged pages,
//! emitted as deltas so the counter's value *is* the peak.

use spmm_kernels::Workspace;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

/// Default page size: 64 KiB.
pub const DEFAULT_PAGE_BYTES: usize = 64 * 1024;

/// A pool of fixed-size pages with a hard budget, shared by request
/// leases and the idle-workspace cache. See the module docs for the
/// accounting model.
#[derive(Debug)]
pub struct PagePool {
    page_bytes: usize,
    budget: usize,
    inner: Mutex<PoolInner>,
}

#[derive(Debug, Default)]
struct PoolInner {
    /// Pages charged to live request leases and checked-out workspaces.
    leased: usize,
    /// Pages charged to idle (cached) workspaces.
    idle_pages: usize,
    /// LRU order: front = least recently used (evicted first).
    idle: VecDeque<IdleWorkspace>,
    peak: usize,
    evictions: u64,
    denials: u64,
}

#[derive(Debug)]
struct IdleWorkspace {
    ws: Workspace,
    pages: usize,
}

/// A point-in-time view of the pool's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct PageStats {
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Hard budget in pages.
    pub budget: usize,
    /// Pages currently charged (request leases + checked-out + idle).
    pub in_use: usize,
    /// High-water mark of `in_use`.
    pub peak: usize,
    /// Idle workspaces dropped to make room.
    pub evictions: u64,
    /// Admission refusals for want of pages.
    pub denials: u64,
}

impl PagePool {
    /// A pool of `page_bytes`-sized pages with a hard `budget` (in
    /// pages). `budget = usize::MAX` is effectively unlimited.
    pub fn new(page_bytes: usize, budget: usize) -> Arc<Self> {
        Arc::new(PagePool {
            page_bytes: page_bytes.max(1),
            budget,
            inner: Mutex::new(PoolInner::default()),
        })
    }

    /// Pages needed to hold `bytes` (ceiling division).
    pub fn pages_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.page_bytes)
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Hard budget in pages.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Lease pages for `bytes` of staging, evicting idle workspaces
    /// (LRU first) if that makes the lease fit. `None` when the budget
    /// cannot accommodate the request even with the idle list empty —
    /// the admission-control refusal the submit path turns into a
    /// `Rejected { retry_after }` outcome.
    pub fn try_lease(self: &Arc<Self>, bytes: usize) -> Option<PageLease> {
        let pages = self.pages_for(bytes);
        let mut inner = self.inner.lock().unwrap();
        if !self.make_room(&mut inner, pages) {
            inner.denials += 1;
            spmm_trace::counter_add("engine.pages.denied", 1);
            return None;
        }
        inner.leased += pages;
        self.note_peak(&mut inner);
        drop(inner);
        spmm_trace::counter_add("engine.pages.leased", pages as u64);
        Some(PageLease {
            pool: Arc::clone(self),
            pages,
        })
    }

    /// Borrow a workspace: the most recently used idle one when
    /// available (warmest buffers), else a fresh empty one. The idle
    /// entry's charge transfers to the checked-out side; the lease's
    /// Drop re-measures and returns it.
    pub fn checkout(self: &Arc<Self>) -> WorkspaceLease {
        let (ws, pages) = {
            let mut inner = self.inner.lock().unwrap();
            match inner.idle.pop_back() {
                Some(entry) => {
                    inner.idle_pages -= entry.pages;
                    inner.leased += entry.pages;
                    spmm_trace::counter_add("workspace.pool_hits", 1);
                    (entry.ws, entry.pages)
                }
                None => {
                    spmm_trace::counter_add("workspace.pool_misses", 1);
                    (Workspace::new(), 0)
                }
            }
        };
        WorkspaceLease {
            ws: Some(ws),
            pages,
            pool: Arc::clone(self),
        }
    }

    /// Number of idle workspaces currently cached.
    pub fn idle_len(&self) -> usize {
        self.inner.lock().unwrap().idle.len()
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> PageStats {
        let inner = self.inner.lock().unwrap();
        PageStats {
            page_bytes: self.page_bytes,
            budget: self.budget,
            in_use: inner.leased + inner.idle_pages,
            peak: inner.peak,
            evictions: inner.evictions,
            denials: inner.denials,
        }
    }

    /// Evict idle workspaces (LRU first) until `pages` more fit under
    /// the budget. Returns false if they cannot fit even then.
    fn make_room(&self, inner: &mut PoolInner, pages: usize) -> bool {
        if pages > self.budget {
            return false;
        }
        while inner.leased + inner.idle_pages + pages > self.budget {
            match inner.idle.pop_front() {
                Some(victim) => {
                    inner.idle_pages -= victim.pages;
                    inner.evictions += 1;
                    spmm_trace::counter_add("engine.pages.evictions", 1);
                }
                None => return inner.leased + pages <= self.budget,
            }
        }
        true
    }

    /// Record a new high-water mark, mirroring it to the monotonic
    /// `engine.pages.peak` counter as a delta so the counter's value
    /// equals the peak.
    fn note_peak(&self, inner: &mut PoolInner) {
        let total = inner.leased + inner.idle_pages;
        if total > inner.peak {
            spmm_trace::counter_add("engine.pages.peak", (total - inner.peak) as u64);
            inner.peak = total;
        }
    }

    fn release(&self, pages: usize) {
        if pages == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.leased -= pages;
        drop(inner);
        spmm_trace::counter_add("engine.pages.released", pages as u64);
    }

    fn restore(&self, ws: Workspace, checkout_pages: usize) {
        let new_pages = self.pages_for(ws.footprint_bytes());
        let mut inner = self.inner.lock().unwrap();
        inner.leased -= checkout_pages;
        // Admit the returning workspace to the idle cache, evicting
        // colder entries to make room; drop it if it cannot fit.
        if self.make_room(&mut inner, new_pages) {
            inner.idle_pages += new_pages;
            inner.idle.push_back(IdleWorkspace {
                ws,
                pages: new_pages,
            });
            self.note_peak(&mut inner);
        } else {
            inner.evictions += 1;
            spmm_trace::counter_add("engine.pages.evictions", 1);
        }
    }
}

/// An RAII page charge taken at admission; dropping it returns the
/// pages. [`PageLease::split`] divides one lease (operand + output,
/// charged together at submit) into independently droppable halves —
/// the operand half is released when execution completes, the output
/// half rides with the ticket until the result is taken.
#[derive(Debug)]
pub struct PageLease {
    pool: Arc<PagePool>,
    pages: usize,
}

impl PageLease {
    /// Pages held by this lease.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Split into `(first, rest)` where `first` holds min(`first_pages`,
    /// all) pages. No pages are charged or released by splitting.
    pub fn split(mut self, first_pages: usize) -> (PageLease, PageLease) {
        let first = first_pages.min(self.pages);
        let rest = self.pages - first;
        self.pages = 0; // neutralize this lease's Drop
        let pool = Arc::clone(&self.pool);
        (
            PageLease {
                pool: Arc::clone(&pool),
                pages: first,
            },
            PageLease { pool, pages: rest },
        )
    }
}

impl Drop for PageLease {
    fn drop(&mut self) {
        self.pool.release(self.pages);
    }
}

/// A checked-out workspace charged against the pool; dereferences to
/// [`Workspace`]. Dropping it re-measures the footprint and returns the
/// workspace to the idle cache (or drops it if the budget is tight).
#[derive(Debug)]
pub struct WorkspaceLease {
    ws: Option<Workspace>,
    pages: usize,
    pool: Arc<PagePool>,
}

impl Deref for WorkspaceLease {
    type Target = Workspace;
    fn deref(&self) -> &Workspace {
        self.ws.as_ref().unwrap()
    }
}

impl DerefMut for WorkspaceLease {
    fn deref_mut(&mut self) -> &mut Workspace {
        self.ws.as_mut().unwrap()
    }
}

impl Drop for WorkspaceLease {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.restore(ws, self.pages);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_and_release_round_trip() {
        let pool = PagePool::new(1024, 16);
        assert_eq!(pool.pages_for(0), 0);
        assert_eq!(pool.pages_for(1), 1);
        assert_eq!(pool.pages_for(1024), 1);
        assert_eq!(pool.pages_for(1025), 2);
        let lease = pool.try_lease(3000).expect("fits");
        assert_eq!(lease.pages(), 3);
        assert_eq!(pool.stats().in_use, 3);
        drop(lease);
        assert_eq!(pool.stats().in_use, 0);
        assert_eq!(pool.stats().peak, 3);
    }

    #[test]
    fn budget_is_hard_and_denials_are_counted() {
        let pool = PagePool::new(1024, 4);
        let a = pool.try_lease(3 * 1024).expect("3 of 4");
        assert!(pool.try_lease(2 * 1024).is_none(), "would exceed budget");
        assert_eq!(pool.stats().denials, 1);
        drop(a);
        assert!(pool.try_lease(4 * 1024).is_some(), "fits after release");
        assert!(pool.try_lease(5 * 1024).is_none(), "never fits");
        assert!(pool.stats().peak <= pool.budget());
    }

    #[test]
    fn split_halves_release_independently() {
        let pool = PagePool::new(1024, 16);
        let lease = pool.try_lease(5 * 1024).unwrap();
        let (operand, output) = lease.split(2);
        assert_eq!(operand.pages(), 2);
        assert_eq!(output.pages(), 3);
        assert_eq!(pool.stats().in_use, 5);
        drop(operand);
        assert_eq!(pool.stats().in_use, 3);
        drop(output);
        assert_eq!(pool.stats().in_use, 0);
    }

    #[test]
    fn workspace_cache_reuses_and_respects_budget() {
        let pool = PagePool::new(1024, 8);
        // Grow a workspace to a measurable footprint and return it.
        {
            let mut lease = pool.checkout();
            lease.reserve_staging(1024, 1);
            drop(lease);
        }
        assert_eq!(pool.idle_len(), 1);
        let idle_pages = pool.stats().in_use;
        assert!(idle_pages >= 4, "grown workspace is charged");
        // A request lease that needs the space evicts the idle entry.
        let lease = pool.try_lease(6 * 1024).expect("eviction makes room");
        assert_eq!(pool.idle_len(), 0);
        assert!(pool.stats().evictions >= 1);
        assert!(pool.stats().in_use <= pool.budget());
        drop(lease);
    }

    #[test]
    fn oversized_returning_workspace_is_dropped_not_retained() {
        let pool = PagePool::new(1024, 2);
        {
            let mut lease = pool.checkout();
            lease.reserve_staging(4096, 1);
        }
        assert_eq!(pool.idle_len(), 0, "over-budget workspace not cached");
        assert_eq!(pool.stats().in_use, 0);
        assert!(pool.stats().evictions >= 1);
        assert!(pool.stats().peak <= pool.budget());
    }
}
