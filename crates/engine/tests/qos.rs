//! Property tests for the serving tier's QoS guarantees: weighted fair
//! dequeue under heavy-tailed arrival mixes, quota rejections with
//! accurate `retry_after` hints, deadline drops that never reach the
//! kernel, and a page budget that is never exceeded.
//!
//! All engines here run with `workers(0)` and are driven inline via
//! `run_until_idle`, so every interleaving is deterministic (the
//! documented determinism contract of the zero-worker mode).

use std::time::Duration;

use proptest::prelude::*;
use spmm_engine::{
    Engine, Priority, SubmitOptions, SubmitOutcome, Ticket, WeightedSchedule, DEFAULT_PAGE_BYTES,
};
use spmm_matrix::{gen, CsrMatrix, DenseMatrix};

fn graph(n: usize, seed: u64) -> CsrMatrix {
    gen::uniform_random(n, 6.0, seed)
}

fn accept(outcome: SubmitOutcome) -> Ticket {
    match outcome {
        SubmitOutcome::Accepted(t) => t,
        SubmitOutcome::Rejected { reason, .. } => panic!("unexpected rejection: {reason}"),
        _ => unreachable!("non-exhaustive outcome"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Stride scheduling's bounded-latency property: while a class stays
    // backlogged, the gap between its consecutive dequeues is bounded
    // by its inverse share. Heavy-tailed mixes (one class with a huge
    // backlog, others trickling) must not starve anyone.
    #[test]
    fn no_class_starves_under_heavy_tailed_backlogs(
        w0 in 1u64..16,
        w1 in 1u64..16,
        w2 in 1u64..16,
        // Heavy-tailed: one class gets the bulk, the others a trickle.
        bulk in 200usize..600,
        trickle_a in 1usize..40,
        trickle_b in 1usize..40,
        bulk_class in 0usize..3,
    ) {
        let weights = [w0, w1, w2];
        let mut backlog = [trickle_a, trickle_b, trickle_a.max(trickle_b)];
        backlog[bulk_class] = bulk;
        let mut sched = WeightedSchedule::new(weights);
        let total_w: u64 = weights.iter().sum();
        let mut since_served = [0usize; 3];
        while backlog.iter().any(|&n| n > 0) {
            let flags = [backlog[0] > 0, backlog[1] > 0, backlog[2] > 0];
            let p = sched.pick(flags).expect("backlog present");
            prop_assert!(backlog[p.index()] > 0, "picked an empty class");
            backlog[p.index()] -= 1;
            for i in 0..3 {
                if i == p.index() {
                    since_served[i] = 0;
                } else if flags[i] {
                    since_served[i] += 1;
                    // Inverse-share bound (+ slack for rounding): a
                    // backlogged class with weight w waits at most
                    // ~total_w/w picks between services.
                    let bound = 2 * (total_w / weights[i].max(1)) as usize + 2;
                    prop_assert!(
                        since_served[i] <= bound,
                        "class {i} (weight {}) starved for {} picks (bound {bound})",
                        weights[i],
                        since_served[i],
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Every accepted request in a random priority mix is served, and
    // the per-class served counters account for exactly the mix.
    #[test]
    fn mixed_priority_drain_serves_every_accepted_request(
        mix in proptest::collection::vec(0usize..3, 1..24),
        seed in 0u64..1000,
    ) {
        let a = graph(96, seed);
        let engine = Engine::builder()
            .workers(0)
            .queue_capacity(64)
            .build()
            .unwrap();
        let session = engine.session(&a).feature_dim(8).open().unwrap();
        let mut expected = [0u64; 3];
        let mut tickets = Vec::new();
        for (i, &class) in mix.iter().enumerate() {
            let p = Priority::ALL[class];
            let b = DenseMatrix::random(a.ncols(), 8, seed * 100 + i as u64);
            tickets.push(accept(session.submit(b, SubmitOptions::from(p))));
            expected[class] += 1;
        }
        engine.run_until_idle();
        for t in tickets {
            prop_assert!(t.wait().is_ok());
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.served, expected);
        prop_assert_eq!(stats.late_executions, 0);
    }

    // Quota rejections carry the documented retry_after estimate: with
    // no service-time sample yet, backlog × 1 ms (DEFAULT_SERVICE_NS)
    // over one worker, clamped to [100 µs, 10 s].
    #[test]
    fn quota_rejections_hint_the_documented_retry_after(quota in 1usize..8) {
        let a = graph(96, 3);
        let engine = Engine::builder()
            .workers(0)
            .queue_capacity(64)
            .tenant_quota(quota)
            .build()
            .unwrap();
        let session = engine.session(&a).feature_dim(8).open().unwrap();
        let opts = SubmitOptions::new().tenant("acme");
        let mut tickets = Vec::new();
        for i in 0..quota {
            let b = DenseMatrix::random(a.ncols(), 8, i as u64);
            tickets.push(accept(session.submit(b.clone(), opts.clone())));
        }
        // One over quota: rejected with the tenant's name and an exact
        // backlog-derived hint (quota requests queued, 1 ms each).
        let b = DenseMatrix::random(a.ncols(), 8, 99);
        match session.submit(b, opts.clone()) {
            SubmitOutcome::Rejected { reason, retry_after, .. } => {
                match reason {
                    spmm_common::SpmmError::QuotaExceeded { tenant, retry_after: ra } => {
                        prop_assert_eq!(tenant, "acme".to_string());
                        prop_assert_eq!(ra, Duration::from_millis(quota as u64));
                        prop_assert_eq!(retry_after, Some(ra));
                    }
                    other => panic!("expected QuotaExceeded, got {other:?}"),
                }
            }
            SubmitOutcome::Accepted(_) => panic!("quota must reject"),
            _ => unreachable!("non-exhaustive outcome"),
        }
        // Another tenant is unaffected by acme's backlog.
        let b = DenseMatrix::random(a.ncols(), 8, 100);
        tickets.push(accept(
            session.submit(b, SubmitOptions::new().tenant("other")),
        ));
        engine.run_until_idle();
        for t in tickets {
            prop_assert!(t.wait().is_ok());
        }
        prop_assert_eq!(engine.stats().quota_rejected, 1);
    }

    // Expired requests are dropped before execution: the exact subset
    // with a past-due deadline completes with DeadlineExpired, the rest
    // compute, and no expired request ever reaches the kernel
    // (late_executions stays 0).
    #[test]
    fn expired_work_never_reaches_the_kernel(
        doomed in proptest::collection::vec(0usize..2, 2..10),
        seed in 0u64..1000,
    ) {
        let a = graph(96, seed);
        let engine = Engine::builder()
            .workers(0)
            .queue_capacity(64)
            .build()
            .unwrap();
        let session = engine.session(&a).feature_dim(8).open().unwrap();
        let tickets: Vec<(bool, Ticket)> = doomed
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let b = DenseMatrix::random(a.ncols(), 8, seed * 100 + i as u64);
                let opts = if d == 1 {
                    SubmitOptions::new().deadline(Duration::from_millis(1))
                } else {
                    SubmitOptions::new()
                };
                (d == 1, accept(session.submit(b, opts)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(5));
        engine.run_until_idle();
        let mut expired = 0u64;
        for (doomed, t) in tickets {
            match t.wait() {
                Ok(_) => prop_assert!(!doomed, "past-due request must not execute"),
                Err(spmm_common::SpmmError::DeadlineExpired { waited }) => {
                    prop_assert!(doomed, "live request must not expire");
                    prop_assert!(waited >= Duration::from_millis(1));
                    expired += 1;
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.timed_out, expired);
        prop_assert_eq!(stats.late_executions, 0);
    }

    // The metered page budget is a hard ceiling: admission refuses work
    // that does not fit (with a retry hint), the peak watermark never
    // exceeds the budget, and everything admitted still computes.
    #[test]
    fn page_budget_is_never_exceeded(
        budget in 1usize..5,
        submissions in 4usize..16,
    ) {
        let a = graph(96, 11);
        let engine = Engine::builder()
            .workers(0)
            .queue_capacity(64)
            .page_bytes(4096)
            .page_budget(budget)
            .build()
            .unwrap();
        let session = engine.session(&a).feature_dim(8).open().unwrap();
        let mut tickets = Vec::new();
        let mut denied = 0u64;
        for i in 0..submissions {
            let b = DenseMatrix::random(a.ncols(), 8, i as u64);
            match session.submit(b, SubmitOptions::new()) {
                SubmitOutcome::Accepted(t) => tickets.push(t),
                SubmitOutcome::Rejected { reason, retry_after, .. } => {
                    prop_assert!(matches!(
                        reason,
                        spmm_common::SpmmError::Capacity { what: "engine page budget", .. }
                    ));
                    prop_assert!(retry_after.is_some(), "page denial must hint a retry");
                    denied += 1;
                }
                _ => unreachable!("non-exhaustive outcome"),
            }
            prop_assert!(engine.page_stats().peak <= budget);
        }
        // Operand (96×8×4 B) + output (96×8×4 B) = 6 KiB → 2 pages of
        // 4 KiB per request; at least one request must fit any budget
        // checked here only when the budget covers it.
        if budget >= 2 {
            prop_assert!(!tickets.is_empty(), "budget {budget} must admit work");
        }
        prop_assert_eq!(tickets.len() + denied as usize, submissions);
        engine.run_until_idle();
        for t in tickets {
            prop_assert!(t.wait().is_ok());
        }
        let stats = engine.page_stats();
        prop_assert!(stats.peak <= budget, "peak {} > budget {budget}", stats.peak);
        prop_assert_eq!(engine.stats().page_denials, denied);
    }
}

#[test]
// Deliberately a compile-time-constant check: pins the published
// default against accidental edits.
#[allow(clippy::assertions_on_constants)]
fn default_page_bytes_is_sane() {
    assert!(DEFAULT_PAGE_BYTES.is_power_of_two());
    assert!(DEFAULT_PAGE_BYTES >= 4096);
}
