//! Engine behaviour under concurrency and load: single-flight plan
//! builds, LRU eviction, batched-vs-sequential bit-identity,
//! backpressure rejection, deadline expiry, and trace observability.

use std::sync::Arc;
use std::time::Duration;

use spmm_engine::{Engine, SubmitOptions, SubmitOutcome};
use spmm_kernels::{KernelKind, PreparedKernel};
use spmm_matrix::{gen, CsrMatrix, DenseMatrix};
use spmm_sim::Arch;

/// Submit with default QoS options, treating rejection as a test error.
fn submit_ok(session: &spmm_engine::Session, b: DenseMatrix) -> spmm_engine::Ticket {
    session
        .submit(b, SubmitOptions::new())
        .into_result()
        .unwrap()
}

fn graph(n: usize, seed: u64) -> CsrMatrix {
    gen::uniform_random(n, 6.0, seed)
}

#[test]
fn n_threads_same_key_build_exactly_one_plan() {
    let engine = Arc::new(Engine::builder().workers(1).build().unwrap());
    let a = Arc::new(graph(512, 1));
    const THREADS: usize = 8;

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let engine = Arc::clone(&engine);
            let a = Arc::clone(&a);
            s.spawn(move || {
                let session = engine.session(&a).feature_dim(32).open().unwrap();
                assert!(!session.is_degraded());
            });
        }
    });

    let stats = engine.stats();
    assert_eq!(
        stats.plan_builds, 1,
        "single-flight: one build, not {THREADS}"
    );
    assert_eq!(stats.cache_hits + stats.cache_misses, THREADS as u64);
    assert!(stats.cache_misses >= 1);
}

#[test]
fn distinct_keys_build_distinct_plans_and_hit_afterwards() {
    let engine = Engine::builder().workers(0).build().unwrap();
    let a = graph(256, 2);
    // Same matrix, different feature dims → different keys.
    engine.session(&a).feature_dim(16).open().unwrap();
    engine.session(&a).feature_dim(32).open().unwrap();
    engine.session(&a).feature_dim(16).open().unwrap(); // hit

    let stats = engine.stats();
    assert_eq!(stats.plan_builds, 2);
    assert_eq!(stats.cache_hits, 1);
}

#[test]
fn lru_eviction_respects_capacity_and_recency() {
    let engine = Engine::builder()
        .workers(0)
        .plan_cache_capacity(2)
        .build()
        .unwrap();
    let mats: Vec<CsrMatrix> = (0..3).map(|i| graph(128, 10 + i)).collect();

    engine.session(&mats[0]).feature_dim(16).open().unwrap();
    engine.session(&mats[1]).feature_dim(16).open().unwrap();
    // Touch 0 so 1 is the LRU victim.
    engine.session(&mats[0]).feature_dim(16).open().unwrap();
    engine.session(&mats[2]).feature_dim(16).open().unwrap(); // evicts 1

    let stats = engine.stats();
    assert_eq!(stats.cache_evictions, 1);
    // 0 is still resident (hit); 1 must rebuild.
    engine.session(&mats[0]).feature_dim(16).open().unwrap();
    engine.session(&mats[1]).feature_dim(16).open().unwrap();
    let stats = engine.stats();
    assert_eq!(stats.plan_builds, 4, "matrix 1 was rebuilt after eviction");
}

#[test]
fn batched_results_bit_identical_to_sequential_multiply() {
    let a = graph(384, 3);
    let direct = PreparedKernel::builder(KernelKind::AccSpmm, &a)
        .arch(Arch::A800)
        .feature_dim(24)
        .build()
        .unwrap();

    let engine = Engine::builder()
        .workers(0)
        .max_batch(8)
        .batch_window(Duration::from_millis(0))
        .build()
        .unwrap();
    let session = engine.session(&a).feature_dim(24).open().unwrap();

    let bs: Vec<DenseMatrix> = (0..6)
        .map(|i| DenseMatrix::random(a.ncols(), 24, 100 + i))
        .collect();
    // Queue all six, then pump once: they coalesce into one micro-batch.
    let tickets: Vec<_> = bs.iter().map(|b| submit_ok(&session, b.clone())).collect();
    engine.run_until_idle();
    let stats = engine.stats();
    assert_eq!(stats.batches, 1, "six same-key requests should coalesce");
    assert_eq!(stats.batched_requests, 6);

    for (ticket, b) in tickets.into_iter().zip(&bs) {
        let via_engine = ticket.wait().unwrap();
        let sequential = direct.execute(b).unwrap();
        assert_eq!(
            via_engine.as_slice(),
            sequential.as_slice(),
            "batched path must be bit-identical to sequential execute"
        );
    }
}

#[test]
fn worker_pool_multiply_matches_reference() {
    let engine = Engine::builder().workers(2).build().unwrap();
    let a = graph(256, 4);
    let session = engine.session(&a).feature_dim(16).open().unwrap();
    let b = DenseMatrix::random(a.ncols(), 16, 5);

    let c = session.multiply(&b).unwrap();
    let tol = spmm_common::scalar::tf32_tolerance(a.nrows());
    let reference = a.spmm_dense(&b).unwrap();
    assert!(c.approx_eq(&reference, tol, tol));
}

#[test]
fn concurrent_clients_get_correct_results() {
    let engine = Arc::new(Engine::builder().workers(2).max_batch(4).build().unwrap());
    let a = Arc::new(graph(256, 6));
    let session = engine.session(&a).feature_dim(16).open().unwrap();
    let expected: Vec<DenseMatrix> = (0..8)
        .map(|i| {
            let b = DenseMatrix::random(a.ncols(), 16, 200 + i);
            session.plan().execute(&b).unwrap()
        })
        .collect();

    std::thread::scope(|s| {
        for i in 0..8u64 {
            let session = session.clone();
            let a = Arc::clone(&a);
            let expect = expected[i as usize].clone();
            s.spawn(move || {
                let b = DenseMatrix::random(a.ncols(), 16, 200 + i);
                let c = session.multiply(&b).unwrap();
                assert_eq!(c.as_slice(), expect.as_slice());
            });
        }
    });
}

#[test]
fn full_queue_rejects_with_capacity_error() {
    // No workers and a 2-slot queue: the third submission must bounce.
    let engine = Engine::builder()
        .workers(0)
        .queue_capacity(2)
        .build()
        .unwrap();
    let a = graph(128, 7);
    let session = engine.session(&a).feature_dim(16).open().unwrap();
    let b = DenseMatrix::random(a.ncols(), 16, 1);

    let _t1 = submit_ok(&session, b.clone());
    let _t2 = submit_ok(&session, b.clone());
    match session.submit(b.clone(), SubmitOptions::new()) {
        SubmitOutcome::Rejected {
            operand: returned,
            retry_after,
            reason,
        } => {
            assert_eq!(returned.as_slice(), b.as_slice(), "operand handed back");
            assert!(
                matches!(reason, spmm_common::SpmmError::Capacity { capacity: 2, .. }),
                "got {reason:?}"
            );
            assert!(retry_after.is_some(), "backpressure must hint a retry");
        }
        SubmitOutcome::Accepted(_) => panic!("queue should be full"),
        _ => unreachable!("non-exhaustive outcome"),
    }
    assert_eq!(engine.stats().rejected, 1);

    // Draining the queue makes room again.
    engine.run_until_idle();
    assert!(matches!(
        session.submit(b, SubmitOptions::new()),
        SubmitOutcome::Accepted(_)
    ));
}

#[test]
fn expired_deadline_drops_queued_request_with_typed_error() {
    let engine = Engine::builder().workers(0).build().unwrap();
    let a = graph(128, 8);
    let session = engine.session(&a).feature_dim(16).open().unwrap();
    let b = DenseMatrix::random(a.ncols(), 16, 2);

    let opts = SubmitOptions::new().deadline(Duration::from_millis(1));
    let ticket = match session.submit(b, opts) {
        SubmitOutcome::Accepted(t) => t,
        SubmitOutcome::Rejected { reason, .. } => panic!("rejected: {reason}"),
        _ => unreachable!("non-exhaustive outcome"),
    };
    std::thread::sleep(Duration::from_millis(10));
    engine.run_until_idle();

    match ticket.wait() {
        Err(spmm_common::SpmmError::DeadlineExpired { waited }) => {
            assert!(
                waited >= Duration::from_millis(1),
                "waited {waited:?} must cover at least the deadline"
            );
        }
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    let stats = engine.stats();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(
        stats.late_executions, 0,
        "expired work must never reach a kernel"
    );
}

#[test]
fn ticket_wait_timeout_gives_up_without_a_worker() {
    let engine = Engine::builder().workers(0).build().unwrap();
    let a = graph(128, 9);
    let session = engine.session(&a).feature_dim(16).open().unwrap();
    let ticket = submit_ok(&session, DenseMatrix::random(a.ncols(), 16, 3));
    assert!(!ticket.is_ready());
    match ticket.wait_timeout(Duration::from_millis(5)) {
        Err(spmm_common::SpmmError::Timeout { .. }) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
}

#[test]
fn shape_mismatch_rejected_before_queueing() {
    let engine = Engine::builder().workers(0).build().unwrap();
    let a = graph(128, 11);
    let session = engine.session(&a).feature_dim(16).open().unwrap();
    let wrong = DenseMatrix::random(a.ncols() + 1, 16, 4);
    match session.submit(wrong, SubmitOptions::new()) {
        SubmitOutcome::Rejected {
            reason,
            retry_after,
            ..
        } => {
            assert!(matches!(reason, spmm_common::SpmmError::Shape { .. }));
            assert!(retry_after.is_none(), "retrying a bad shape cannot help");
        }
        SubmitOutcome::Accepted(_) => panic!("shape mismatch must not enqueue"),
        _ => unreachable!("non-exhaustive outcome"),
    }
    assert_eq!(engine.stats().enqueued, 0);
}

#[test]
fn install_shares_an_external_plan() {
    let a = graph(256, 12);
    let prepared = PreparedKernel::builder(KernelKind::AccSpmm, &a)
        .arch(Arch::A800)
        .feature_dim(16)
        .build()
        .unwrap();

    let engine = Engine::builder().workers(0).build().unwrap();
    let session = engine.install(prepared);
    // A later session() for the same identity hits the installed entry.
    let again = engine.session(&a).feature_dim(16).open().unwrap();
    let stats = engine.stats();
    assert_eq!(stats.plan_builds, 0, "install must not trigger a build");
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(session.key(), again.key());
}

#[test]
fn counters_visible_through_spmm_trace() {
    spmm_trace::enable();
    spmm_trace::reset();
    {
        let engine = Engine::builder()
            .workers(0)
            .queue_capacity(1)
            .build()
            .unwrap();
        let a = graph(128, 13);
        let session = engine.session(&a).feature_dim(16).open().unwrap();
        let b = DenseMatrix::random(a.ncols(), 16, 5);
        let _t = submit_ok(&session, b.clone());
        let _ = session.submit(b, SubmitOptions::new()); // rejected
        engine.run_until_idle();
    }
    let snap = spmm_trace::snapshot();
    spmm_trace::disable();
    assert_eq!(snap.counter("engine.cache_misses"), 1);
    assert_eq!(snap.counter("engine.plan_builds"), 1);
    assert_eq!(snap.counter("engine.enqueued"), 1);
    assert_eq!(snap.counter("engine.rejected"), 1);
    assert_eq!(snap.counter("engine.batches"), 1);
}

#[test]
fn builder_rejects_zero_capacities() {
    assert!(Engine::builder().queue_capacity(0).build().is_err());
    assert!(Engine::builder().max_batch(0).build().is_err());
    assert!(Engine::builder().plan_cache_capacity(0).build().is_err());
    assert!(Engine::builder().page_bytes(0).build().is_err());
    assert!(Engine::builder().page_budget(0).build().is_err());
    assert!(Engine::builder().tenant_quota(0).build().is_err());
}

#[test]
fn drop_fails_leftover_tickets_instead_of_hanging() {
    let a = graph(128, 14);
    let ticket = {
        let engine = Engine::builder().workers(0).build().unwrap();
        let session = engine.session(&a).feature_dim(16).open().unwrap();
        submit_ok(&session, DenseMatrix::random(a.ncols(), 16, 6))
        // engine dropped here with the request still queued
    };
    match ticket.wait() {
        Err(spmm_common::SpmmError::Capacity { .. }) => {}
        other => panic!("expected Capacity (shutdown), got {other:?}"),
    }
}

#[test]
fn stats_expose_queue_depth_and_in_flight() {
    let engine = Arc::new(Engine::builder().workers(0).max_batch(1).build().unwrap());
    let a = graph(768, 14);
    let session = engine.session(&a).feature_dim(64).open().unwrap();
    let b = DenseMatrix::random(a.ncols(), 64, 40);

    // Zero workers: submitted requests sit in the queue until drained.
    let mut tickets: Vec<_> = (0..3).map(|_| submit_ok(&session, b.clone())).collect();
    assert_eq!(engine.stats().queue_depth, 3);
    assert_eq!(engine.stats().in_flight, 0);

    // Sample the gauge from another thread while this thread executes:
    // in_flight must be visible mid-batch and settle back to 0.
    let observer = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let deadline = std::time::Instant::now() + Duration::from_secs(20);
            while std::time::Instant::now() < deadline {
                if engine.stats().in_flight >= 1 {
                    return true;
                }
                std::thread::yield_now();
            }
            false
        })
    };
    while !observer.is_finished() {
        tickets.push(submit_ok(&session, b.clone()));
        engine.run_until_idle();
    }
    assert!(
        observer.join().unwrap(),
        "observer never saw in_flight >= 1"
    );
    engine.run_until_idle();
    for t in tickets {
        t.wait().unwrap();
    }
    let stats = engine.stats();
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.in_flight, 0);
}

// --- Persistent plan tier --------------------------------------------------

fn store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spmm-engine-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_restart_serves_plans_from_the_store() {
    let dir = store_dir("warm");
    let a = graph(256, 9);
    let b = DenseMatrix::random(256, 32, 4);

    // Cold process: builds and writes through.
    let cold = {
        let engine = Engine::builder()
            .workers(1)
            .plan_store(&dir)
            .build()
            .unwrap();
        let session = engine.session(&a).feature_dim(32).open().unwrap();
        let c = session.multiply(&b).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.plan_builds, 1);
        assert_eq!(stats.store_misses, 1);
        assert_eq!(stats.store_hits, 0);
        c
    };

    // "Restarted" process: fresh engine, same store → no build.
    let engine = Engine::builder()
        .workers(1)
        .plan_store(&dir)
        .build()
        .unwrap();
    let session = engine.session(&a).feature_dim(32).open().unwrap();
    let warm = session.multiply(&b).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.plan_builds, 0, "warm start must not rebuild");
    assert_eq!(stats.store_hits, 1);
    assert_eq!(
        cold.as_slice(),
        warm.as_slice(),
        "rehydrated plan must be bit-identical to the built one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_store_artifact_falls_back_to_a_fresh_build() {
    let dir = store_dir("fallback");
    let a = graph(192, 10);
    let b = DenseMatrix::random(192, 16, 5);

    {
        let engine = Engine::builder()
            .workers(1)
            .plan_store(&dir)
            .build()
            .unwrap();
        engine.session(&a).feature_dim(16).open().unwrap();
    }

    // Truncate every persisted artifact.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    }

    spmm_trace::reset();
    spmm_trace::enable();
    let engine = Engine::builder()
        .workers(1)
        .plan_store(&dir)
        .build()
        .unwrap();
    let session = engine.session(&a).feature_dim(16).open().unwrap();
    let c = session.multiply(&b).unwrap();
    spmm_trace::disable();

    let stats = engine.stats();
    assert_eq!(stats.load_fallbacks, 1, "broken artifact must be announced");
    assert_eq!(stats.plan_builds, 1, "and must degrade to a fresh build");
    assert!(!session.is_degraded(), "fallback is not a degraded session");
    assert_eq!(c.nrows(), 192);
    let snap = spmm_trace::snapshot();
    assert_eq!(snap.counter("plan.load_fallback"), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn install_writes_through_to_the_store() {
    let dir = store_dir("install");
    let a = graph(128, 11);
    let prepared = PreparedKernel::builder(KernelKind::AccSpmm, &a)
        .arch(Arch::A800)
        .feature_dim(16)
        .build()
        .unwrap();

    {
        let engine = Engine::builder()
            .workers(1)
            .plan_store(&dir)
            .build()
            .unwrap();
        engine.install(prepared);
    }

    // A restarted engine serves the installed plan from disk.
    let engine = Engine::builder()
        .workers(1)
        .plan_store(&dir)
        .build()
        .unwrap();
    engine.session(&a).feature_dim(16).open().unwrap();
    let stats = engine.stats();
    assert_eq!(stats.plan_builds, 0);
    assert_eq!(stats.store_hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auto_sessions_cache_and_persist_like_any_kernel() {
    // `KernelKind::Auto` is a first-class cache/store key: hybrid plans
    // single-flight through the cache, write through to the store, and
    // a warm restart replays them bit-identically.
    let dir = store_dir("auto");
    let a = graph(256, 12);
    let b = DenseMatrix::random(256, 32, 6);

    let cold = {
        let engine = Engine::builder()
            .workers(1)
            .plan_store(&dir)
            .build()
            .unwrap();
        let s1 = engine
            .session(&a)
            .kind(KernelKind::Auto)
            .feature_dim(32)
            .open()
            .unwrap();
        // Second session, same key: cache hit, no rebuild.
        engine
            .session(&a)
            .kind(KernelKind::Auto)
            .feature_dim(32)
            .open()
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.plan_builds, 1);
        assert_eq!(stats.cache_hits, 1);
        s1.multiply(&b).unwrap()
    };

    // Warm restart: the hybrid plan rehydrates from the store.
    let engine = Engine::builder()
        .workers(1)
        .plan_store(&dir)
        .build()
        .unwrap();
    let session = engine
        .session(&a)
        .kind(KernelKind::Auto)
        .feature_dim(32)
        .open()
        .unwrap();
    let warm = session.multiply(&b).unwrap();
    let stats = engine.stats();
    assert_eq!(stats.plan_builds, 0, "warm start must not rebuild");
    assert_eq!(stats.store_hits, 1);
    assert_eq!(
        cold.as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        warm.as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        "rehydrated hybrid plan must be bit-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// --- Dynamic-graph deltas --------------------------------------------------

#[test]
fn apply_delta_repairs_the_session_and_serves_bit_identically() {
    let dir = store_dir("delta");
    let engine = Engine::builder()
        .workers(1)
        .plan_store(&dir)
        .build()
        .unwrap();
    let a = graph(256, 13);
    let mut session = engine.session(&a).feature_dim(16).open().unwrap();
    let old_key = session.key();

    let mut delta = spmm_delta::DeltaCsr::new(a.clone());
    delta.upsert(3, 200, 1.25).unwrap();
    delta.upsert(77, 5, -2.5).unwrap();
    let (cols, _) = a.row(130);
    if let Some(&c) = cols.first() {
        delta.delete(130, c);
    }
    let report = session.apply_delta(&delta).unwrap();
    assert!(report.edges_applied >= 2);
    assert!(report.windows_rebuilt > 0 && report.windows_rebuilt < report.windows_total);

    // The session now serves the compacted matrix, bit-identical to a
    // from-scratch kernel on it.
    let compacted = delta.compact();
    assert_eq!(session.key().fingerprint, compacted.content_fingerprint());
    let b = DenseMatrix::random(256, 16, 9);
    let served = session.multiply(&b).unwrap();
    let scratch = PreparedKernel::builder(KernelKind::AccSpmm, &compacted)
        .arch(Arch::A800)
        .feature_dim(16)
        .build()
        .unwrap()
        .execute(&b)
        .unwrap();
    assert_eq!(served.as_slice(), scratch.as_slice());

    // Partial invalidation: the old fingerprint's plans are gone from
    // cache and store; the repaired plan is installed under the new
    // key, so a new session on the compacted matrix is a pure cache
    // hit (no rebuild).
    let builds_before = engine.stats().plan_builds;
    engine.session(&compacted).feature_dim(16).open().unwrap();
    assert_eq!(engine.stats().plan_builds, builds_before);
    let store = spmm_engine::PlanStore::open(&dir).unwrap();
    assert!(!store.contains(&old_key), "old artifact must be purged");
    assert!(store.contains(&session.key()), "repaired plan persisted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_delta_is_a_no_op_and_mismatched_base_is_rejected() {
    let engine = Engine::builder().workers(1).build().unwrap();
    let a = graph(128, 21);
    let mut session = engine.session(&a).feature_dim(8).open().unwrap();
    let key = session.key();
    let report = session
        .apply_delta(&spmm_delta::DeltaCsr::new(a.clone()))
        .unwrap();
    assert_eq!(report.edges_applied, 0);
    assert_eq!(session.key(), key, "clean delta keeps the binding");

    let other = graph(128, 22);
    assert!(session
        .apply_delta(&spmm_delta::DeltaCsr::new(other))
        .is_err());
}
