//! Shared foundation types for the Acc-SpMM reproduction workspace.
//!
//! This crate holds the pieces every other crate needs: TF32 scalar
//! emulation matching tensor-core numerics ([`scalar`]), the explicit
//! SIMD compute core with runtime ISA dispatch ([`simd`]), the workspace
//! error type ([`error`]), small numeric utilities ([`stats`], [`prefix`]),
//! and index helpers ([`util`]).

pub mod error;
pub mod json;
pub mod precision;
pub mod prefix;
pub mod scalar;
pub mod simd;
pub mod stats;
pub mod util;

pub use error::{PlanLoadError, Result, SpmmError};
pub use precision::{round_to, Precision};
pub use scalar::{
    tf32_mma_8x8, tf32_mma_8x8_prerounded, tf32_mma_8x8_rows, to_tf32, to_tf32_slice,
};
pub use simd::{
    axpy_tier, mma_8x8_prerounded_tier, mma_8x8_rows_tier, to_tf32_slice_into_tier,
    to_tf32_slice_tier, IsaTier,
};
