//! Workspace error type.

use std::fmt;
use std::time::Duration;

/// Errors produced by the Acc-SpMM library and its substrates.
///
/// The taxonomy is typed so callers can *match* on failure classes
/// instead of parsing strings — in particular the serving-engine paths
/// ([`SpmmError::Build`], [`SpmmError::Capacity`], [`SpmmError::Timeout`])
/// and the shape checks every kernel entry point performs
/// ([`SpmmError::Shape`]). The enum is `#[non_exhaustive]`: future
/// failure classes (e.g. new engine admission states) can be added
/// without a breaking change, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpmmError {
    /// Preprocessing (plan construction) failed for a kernel.
    Build {
        /// Display name of the kernel whose plan failed to build.
        kernel: &'static str,
        /// The underlying failure, flattened to a string.
        detail: String,
    },
    /// Matrix/operand shapes do not agree for the requested operation.
    Shape {
        /// Human-readable description of the shapes involved.
        context: String,
    },
    /// A bounded resource (request queue, cache admission) is full and
    /// the request was rejected — the backpressure signal.
    Capacity {
        /// Which bounded resource rejected the request.
        what: &'static str,
        /// The resource's configured capacity.
        capacity: usize,
    },
    /// A *caller-side* wait gave up: the client stopped waiting on a
    /// ticket or blocking call after its allowance elapsed. The work
    /// itself may still complete later — contrast with
    /// [`SpmmError::DeadlineExpired`], where the *server* dropped the
    /// work before executing it, and [`SpmmError::QuotaExceeded`],
    /// where admission control refused it up front.
    Timeout {
        /// What was being waited on.
        what: &'static str,
        /// How long was waited/allowed, in milliseconds.
        waited_ms: u64,
    },
    /// Admission control refused the request because the tenant is at
    /// its quota. Unlike [`SpmmError::Capacity`] (a global bounded
    /// resource is full) this is a *per-tenant* verdict, and unlike
    /// [`SpmmError::Timeout`] no work was ever queued. `retry_after`
    /// is the engine's estimate of when the tenant's backlog will have
    /// drained enough for a resubmission to be admitted.
    QuotaExceeded {
        /// The tenant whose quota was exhausted.
        tenant: String,
        /// Estimated wait before a retry is likely to be admitted.
        retry_after: Duration,
    },
    /// The *server* dropped queued work because its deadline passed
    /// before execution started — the request never reached a kernel.
    /// Contrast with [`SpmmError::Timeout`]: that is a client giving up
    /// on a wait; this is the scheduler refusing to spend cycles on
    /// work whose answer can no longer arrive in time.
    DeadlineExpired {
        /// How long the request sat queued before it was dropped.
        waited: Duration,
    },
    /// An index (row, column, or offset) is out of bounds.
    IndexOutOfBounds {
        /// Which structure was being indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound that was violated.
        bound: usize,
    },
    /// A compressed format's internal invariants are violated.
    MalformedFormat {
        /// Description of the violated invariant.
        detail: String,
    },
    /// Failure parsing an external representation (e.g. Matrix Market).
    Parse {
        /// Line number where parsing failed (1-based), if known.
        line: usize,
        /// Description of the problem.
        detail: String,
    },
    /// A shard of a distributed multiply failed after exhausting its
    /// retries; surfaces which shard so operators can map the failure to
    /// a worker.
    Shard {
        /// Index of the failing shard.
        shard: usize,
        /// Retries attempted before giving up.
        retries: usize,
        /// The underlying per-shard failure.
        cause: Box<SpmmError>,
    },
    /// A persisted execution plan failed to load or validate. The nested
    /// [`PlanLoadError`] distinguishes the rejection classes so callers
    /// (warm-start caches, plan-shipping coordinators) can decide between
    /// *rebuild* and *report*.
    PlanLoad(PlanLoadError),
    /// I/O failure, with the underlying message flattened to a string so the
    /// error stays `Clone + Eq`.
    Io(String),
    /// A configuration value is invalid (zero tile size, empty arch, ...).
    InvalidConfig(String),
}

/// Why a persisted plan IR was rejected by the loader/validator.
///
/// Every variant carries the *plan-side* and (where applicable) the
/// *requested* value as display strings, keeping the enum
/// `Clone + PartialEq + Eq` without dragging plan-layer types into the
/// error substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanLoadError {
    /// The bytes are not a plan IR container (bad magic, unparsable
    /// header, truncated framing).
    NotPlanIr {
        /// What failed to parse.
        detail: String,
    },
    /// The container's schema version is not supported by this build.
    VersionMismatch {
        /// Version recorded in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The plan was compiled for a different GPU architecture than the
    /// loader expects (balance schedules and traces are arch-specific).
    ArchMismatch {
        /// Architecture recorded in the plan header.
        plan: String,
        /// Architecture the loader was asked to validate against.
        requested: String,
    },
    /// The plan's operand content fingerprint does not match the matrix
    /// the caller wants served — the plan describes different data.
    FingerprintMismatch {
        /// Fingerprint recorded in the plan header (hex).
        plan: String,
        /// Fingerprint the loader was asked to validate against (hex).
        requested: String,
    },
    /// A non-arch binding (kernel kind, feature dimension, Acc config)
    /// disagrees with what the loader expects.
    BindingMismatch {
        /// Which binding field disagreed.
        field: &'static str,
        /// Value recorded in the plan header.
        plan: String,
        /// Value the loader was asked to validate against.
        requested: String,
    },
    /// A stage-artifact section is missing, truncated, or internally
    /// inconsistent with the header.
    ArtifactInvalid {
        /// Which section ("perm", "csr", "format", "balance", "trace").
        section: &'static str,
        /// The violated invariant.
        detail: String,
    },
}

impl fmt::Display for PlanLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanLoadError::NotPlanIr { detail } => {
                write!(f, "not a plan IR container: {detail}")
            }
            PlanLoadError::VersionMismatch { found, supported } => {
                write!(
                    f,
                    "plan IR version {found} unsupported (expected {supported})"
                )
            }
            PlanLoadError::ArchMismatch { plan, requested } => {
                write!(f, "plan compiled for {plan}, loader expects {requested}")
            }
            PlanLoadError::FingerprintMismatch { plan, requested } => {
                write!(
                    f,
                    "plan fingerprint {plan} does not match operand {requested}"
                )
            }
            PlanLoadError::BindingMismatch {
                field,
                plan,
                requested,
            } => {
                write!(f, "plan {field} is {plan}, loader expects {requested}")
            }
            PlanLoadError::ArtifactInvalid { section, detail } => {
                write!(f, "plan {section} artifact invalid: {detail}")
            }
        }
    }
}

impl From<PlanLoadError> for SpmmError {
    fn from(e: PlanLoadError) -> Self {
        SpmmError::PlanLoad(e)
    }
}

impl SpmmError {
    /// Shorthand for a [`SpmmError::Shape`] with a formatted context.
    pub fn shape(context: impl Into<String>) -> Self {
        SpmmError::Shape {
            context: context.into(),
        }
    }

    /// Shorthand for a [`SpmmError::Build`] wrapping an underlying error.
    pub fn build(kernel: &'static str, detail: impl fmt::Display) -> Self {
        SpmmError::Build {
            kernel,
            detail: detail.to_string(),
        }
    }
}

impl fmt::Display for SpmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpmmError::Build { kernel, detail } => {
                write!(f, "plan build failed for {kernel}: {detail}")
            }
            SpmmError::Shape { context } => {
                write!(f, "shape mismatch: {context}")
            }
            SpmmError::Capacity { what, capacity } => {
                write!(f, "{what} at capacity ({capacity}); request rejected")
            }
            SpmmError::Timeout { what, waited_ms } => {
                write!(f, "{what} timed out after {waited_ms} ms")
            }
            SpmmError::QuotaExceeded {
                tenant,
                retry_after,
            } => {
                write!(
                    f,
                    "tenant {tenant} at quota; retry after {} ms",
                    retry_after.as_millis()
                )
            }
            SpmmError::DeadlineExpired { waited } => {
                write!(
                    f,
                    "deadline expired after {} ms queued; dropped before execution",
                    waited.as_millis()
                )
            }
            SpmmError::IndexOutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} out of bounds (< {bound} required)")
            }
            SpmmError::Shard {
                shard,
                retries,
                cause,
            } => {
                write!(f, "shard {shard} failed after {retries} retries: {cause}")
            }
            SpmmError::MalformedFormat { detail } => write!(f, "malformed format: {detail}"),
            SpmmError::PlanLoad(e) => write!(f, "plan load rejected: {e}"),
            SpmmError::Parse { line, detail } => write!(f, "parse error at line {line}: {detail}"),
            SpmmError::Io(msg) => write!(f, "I/O error: {msg}"),
            SpmmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SpmmError {}

impl From<std::io::Error> for SpmmError {
    fn from(e: std::io::Error) -> Self {
        SpmmError::Io(e.to_string())
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, SpmmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SpmmError::shape("A is 4x4, B is 5x2");
        assert!(e.to_string().contains("4x4"));

        let e = SpmmError::IndexOutOfBounds {
            what: "row",
            index: 9,
            bound: 4,
        };
        assert!(e.to_string().contains("row index 9"));

        let e = SpmmError::Parse {
            line: 3,
            detail: "bad float".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn engine_taxonomy_is_matchable() {
        let e = SpmmError::Capacity {
            what: "engine queue",
            capacity: 16,
        };
        assert!(matches!(e, SpmmError::Capacity { capacity: 16, .. }));
        assert!(e.to_string().contains("capacity (16)"));

        let e = SpmmError::Timeout {
            what: "multiply request",
            waited_ms: 25,
        };
        assert!(matches!(e, SpmmError::Timeout { waited_ms: 25, .. }));
        assert!(e.to_string().contains("25 ms"));

        let e = SpmmError::build("Acc-SpMM", "feature_dim must be > 0");
        assert!(matches!(
            e,
            SpmmError::Build {
                kernel: "Acc-SpMM",
                ..
            }
        ));
    }

    #[test]
    fn qos_taxonomy_is_typed_and_distinct_from_timeout() {
        let e = SpmmError::QuotaExceeded {
            tenant: "acme".into(),
            retry_after: Duration::from_millis(12),
        };
        match &e {
            SpmmError::QuotaExceeded {
                tenant,
                retry_after,
            } => {
                assert_eq!(tenant, "acme");
                assert_eq!(*retry_after, Duration::from_millis(12));
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        assert!(e.to_string().contains("acme"));
        assert!(e.to_string().contains("12 ms"));

        let e = SpmmError::DeadlineExpired {
            waited: Duration::from_millis(7),
        };
        assert!(matches!(e, SpmmError::DeadlineExpired { .. }));
        assert!(!matches!(e, SpmmError::Timeout { .. }));
        assert!(e.to_string().contains("7 ms"));
        assert!(e.to_string().contains("before execution"));
    }

    #[test]
    fn shard_errors_surface_the_failing_shard() {
        let e = SpmmError::Shard {
            shard: 3,
            retries: 2,
            cause: Box::new(SpmmError::shape("bad operand")),
        };
        assert!(matches!(e, SpmmError::Shard { shard: 3, .. }));
        let msg = e.to_string();
        assert!(
            msg.contains("shard 3") && msg.contains("bad operand"),
            "{msg}"
        );
    }

    #[test]
    fn plan_load_errors_are_typed_and_informative() {
        let e: SpmmError = PlanLoadError::VersionMismatch {
            found: 7,
            supported: 1,
        }
        .into();
        assert!(matches!(
            e,
            SpmmError::PlanLoad(PlanLoadError::VersionMismatch { found: 7, .. })
        ));
        assert!(e.to_string().contains("version 7"));

        let e: SpmmError = PlanLoadError::ArchMismatch {
            plan: "H100".into(),
            requested: "A800".into(),
        }
        .into();
        assert!(e.to_string().contains("H100") && e.to_string().contains("A800"));

        let e: SpmmError = PlanLoadError::FingerprintMismatch {
            plan: "0xdead".into(),
            requested: "0xbeef".into(),
        }
        .into();
        assert!(e.to_string().contains("0xdead"));

        let e: SpmmError = PlanLoadError::ArtifactInvalid {
            section: "format",
            detail: "offsets not monotone".into(),
        }
        .into();
        assert!(e.to_string().contains("format artifact"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.mtx");
        let e: SpmmError = io.into();
        assert!(matches!(e, SpmmError::Io(_)));
        assert!(e.to_string().contains("missing.mtx"));
    }
}
