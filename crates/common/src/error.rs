//! Workspace error type.

use std::fmt;

/// Errors produced by the Acc-SpMM library and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpmmError {
    /// Matrix dimensions do not agree for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the two shapes involved.
        context: String,
    },
    /// An index (row, column, or offset) is out of bounds.
    IndexOutOfBounds {
        /// Which structure was being indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound that was violated.
        bound: usize,
    },
    /// A compressed format's internal invariants are violated.
    MalformedFormat {
        /// Description of the violated invariant.
        detail: String,
    },
    /// Failure parsing an external representation (e.g. Matrix Market).
    Parse {
        /// Line number where parsing failed (1-based), if known.
        line: usize,
        /// Description of the problem.
        detail: String,
    },
    /// I/O failure, with the underlying message flattened to a string so the
    /// error stays `Clone + Eq`.
    Io(String),
    /// A configuration value is invalid (zero tile size, empty arch, ...).
    InvalidConfig(String),
}

impl fmt::Display for SpmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpmmError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            SpmmError::IndexOutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} out of bounds (< {bound} required)")
            }
            SpmmError::MalformedFormat { detail } => write!(f, "malformed format: {detail}"),
            SpmmError::Parse { line, detail } => write!(f, "parse error at line {line}: {detail}"),
            SpmmError::Io(msg) => write!(f, "I/O error: {msg}"),
            SpmmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SpmmError {}

impl From<std::io::Error> for SpmmError {
    fn from(e: std::io::Error) -> Self {
        SpmmError::Io(e.to_string())
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, SpmmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SpmmError::DimensionMismatch {
            context: "A is 4x4, B is 5x2".into(),
        };
        assert!(e.to_string().contains("4x4"));

        let e = SpmmError::IndexOutOfBounds {
            what: "row",
            index: 9,
            bound: 4,
        };
        assert!(e.to_string().contains("row index 9"));

        let e = SpmmError::Parse {
            line: 3,
            detail: "bad float".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.mtx");
        let e: SpmmError = io.into();
        assert!(matches!(e, SpmmError::Io(_)));
        assert!(e.to_string().contains("missing.mtx"));
    }
}
