//! TF32 scalar emulation.
//!
//! NVIDIA tensor cores execute `mma.m16n8k8.tf32` by rounding each FP32
//! operand to TF32 (8-bit exponent, 10-bit mantissa) and accumulating in
//! full FP32. We reproduce exactly that: [`to_tf32`] performs
//! round-to-nearest-even truncation of the low 13 mantissa bits, and the
//! MMA helpers round operands before multiplying while keeping the
//! accumulator in FP32.

/// FP32 exponent field mask; an all-ones exponent means NaN or infinity.
const EXP_MASK: u32 = 0x7F80_0000;

/// Round an `f32` to TF32 precision (10-bit mantissa) with
/// round-to-nearest-even, which is what Ampere-class tensor cores apply to
/// `mma` operands.
///
/// NaN and infinities are passed through unchanged; TF32 shares FP32's
/// 8-bit exponent so no range change occurs. The non-finite passthrough
/// is a branchless bitmask select (not an early return) so slice-level
/// rounding autovectorizes.
#[inline]
pub fn to_tf32(x: f32) -> f32 {
    let bits = x.to_bits();
    // 13 low mantissa bits are dropped. Round-to-nearest-even: add half of
    // the dropped ULP plus the parity bit of the kept part. A round-up
    // carry out of the mantissa lands in the exponent, which is exactly
    // IEEE overflow-to-infinity; only a pre-existing all-ones exponent
    // (NaN/Inf) must keep its original bits, selected by `pass`.
    let round_bit = 1u32 << 12;
    let keep_lsb = (bits >> 13) & 1;
    let rounded = bits.wrapping_add((round_bit - 1) + keep_lsb) & !0x1FFF;
    let pass = 0u32.wrapping_sub(((bits & EXP_MASK) == EXP_MASK) as u32);
    f32::from_bits((rounded & !pass) | (bits & pass))
}

/// Round every element of `xs` to TF32 in place.
///
/// Since [`to_tf32`] is idempotent, pre-rounding a buffer once and then
/// multiplying is bit-identical to rounding at every use — which is what
/// lets the formats store pre-rounded values and the kernels stage a
/// pre-rounded copy of B ([`tf32_mma_8x8_prerounded`] consumes both).
#[inline]
pub fn to_tf32_slice(xs: &mut [f32]) {
    for x in xs.iter_mut() {
        *x = to_tf32(*x);
    }
}

/// Round `src` to TF32 into `dst` (same contract as [`to_tf32_slice`]).
#[inline]
pub fn to_tf32_slice_into(src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = to_tf32(s);
    }
}

/// Dot product with TF32 operand rounding and FP32 accumulation, mirroring
/// a chain of tensor-core MMAs along the K dimension.
///
/// **Test-only.** This re-rounds both operands per element — the slow
/// path the pre-rounded kernels exist to avoid — so it is kept solely as
/// a readable oracle for tests and is not re-exported from the crate
/// root; kernels cannot reach it by accident.
#[cfg(test)]
#[inline]
pub fn tf32_dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += to_tf32(x) * to_tf32(y);
    }
    acc
}

/// One software tensor-core MMA over an 8×8 A block and an 8×`n` B slab:
/// `C += round_tf32(A) × round_tf32(B)` with FP32 accumulation.
///
/// `a` is row-major 8×8, `b` is row-major 8×`n`, `c` is row-major 8×`n`.
/// This is the numeric core of every TC kernel in the workspace; the
/// operand swap the paper performs (computing Bᵀ·Aᵀ to allow 8×8 A tiles
/// with `m16n8k8`) is a layout concern handled by callers and does not
/// change this arithmetic.
#[inline]
pub fn tf32_mma_8x8(a: &[f32; 64], b: &[f32], c: &mut [f32], n: usize) {
    debug_assert_eq!(b.len(), 8 * n);
    debug_assert_eq!(c.len(), 8 * n);
    for i in 0..8 {
        for k in 0..8 {
            let av = to_tf32(a[i * 8 + k]);
            if av == 0.0 {
                continue;
            }
            let brow = &b[k * n..k * n + n];
            let crow = &mut c[i * n..i * n + n];
            for j in 0..n {
                crow[j] += av * to_tf32(brow[j]);
            }
        }
    }
}

/// [`tf32_mma_8x8_prerounded`] reading the dense operand through eight
/// per-row slices instead of a gathered contiguous tile.
///
/// With B pre-rounded in a staging buffer, the gather copy that used to
/// feed the contiguous-tile MMA is pure overhead — the kernel can read
/// each block row in place. Per output element this performs exactly
/// the same multiply-adds in the same order as gathering into a tile
/// first, so results are bit-identical.
///
/// Rows whose A column is entirely zero (e.g. a block's padded columns)
/// may be passed as empty slices: the `av == 0.0` skip guarantees they
/// are never read, and a structurally impossible nonzero against a
/// short row panics on the `[..n]` bounds check rather than truncating.
#[inline]
pub fn tf32_mma_8x8_rows(a: &[f32; 64], rows: &[&[f32]; 8], c: &mut [f32], n: usize) {
    debug_assert_eq!(c.len(), 8 * n);
    for i in 0..8 {
        let crow = &mut c[i * n..(i + 1) * n];
        for k in 0..8 {
            let av = a[i * 8 + k];
            if av == 0.0 {
                continue;
            }
            let brow = &rows[k][..n];
            let mut cc = crow.chunks_exact_mut(8);
            let mut bb = brow.chunks_exact(8);
            for (cs, bs) in (&mut cc).zip(&mut bb) {
                for j in 0..8 {
                    cs[j] += av * bs[j];
                }
            }
            for (cj, &bj) in cc.into_remainder().iter_mut().zip(bb.remainder()) {
                *cj += av * bj;
            }
        }
    }
}

/// [`tf32_mma_8x8`] over operands that are **already TF32-rounded**: the
/// inner loop is a pure `c[j] += av * b[j]`, chunked so LLVM vectorizes
/// it. Callers must have passed both tiles through [`to_tf32_slice`] (or
/// built them from pre-rounded values); by idempotency of [`to_tf32`]
/// the result is then bit-identical to the re-rounding [`tf32_mma_8x8`]
/// on the raw operands.
///
/// The `av == 0.0` skip is kept from the rounding variant — it is
/// semantically load-bearing, not just a fast path: a zero A slot must
/// not multiply a non-finite B element (`0 × Inf = NaN` would otherwise
/// contaminate the accumulator).
#[inline]
pub fn tf32_mma_8x8_prerounded(a: &[f32; 64], b: &[f32], c: &mut [f32], n: usize) {
    debug_assert_eq!(b.len(), 8 * n);
    debug_assert_eq!(c.len(), 8 * n);
    for i in 0..8 {
        let crow = &mut c[i * n..(i + 1) * n];
        for k in 0..8 {
            let av = a[i * 8 + k];
            if av == 0.0 {
                continue;
            }
            let brow = &b[k * n..k * n + n];
            let mut cc = crow.chunks_exact_mut(8);
            let mut bb = brow.chunks_exact(8);
            for (cs, bs) in (&mut cc).zip(&mut bb) {
                for j in 0..8 {
                    cs[j] += av * bs[j];
                }
            }
            for (cj, &bj) in cc.into_remainder().iter_mut().zip(bb.remainder()) {
                *cj += av * bj;
            }
        }
    }
}

/// Relative tolerance for comparing TF32 results against an FP32 dense
/// reference. TF32 carries ~3 decimal digits; a chain of `k` accumulations
/// loses roughly `k.sqrt()` ULPs, so we scale with the reduction length.
#[inline]
pub fn tf32_tolerance(reduction_len: usize) -> f32 {
    // 2^-10 operand rounding, accumulated error grows ~ sqrt(k).
    1e-3 * (reduction_len.max(1) as f32).sqrt().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tf32_is_idempotent() {
        for &x in &[0.0f32, 1.0, -1.5, 2.625_17, 1e-20, 1e20, 123_456.79] {
            let once = to_tf32(x);
            assert_eq!(once.to_bits(), to_tf32(once).to_bits(), "x={x}");
        }
    }

    #[test]
    fn tf32_clears_low_mantissa_bits() {
        for &x in &[1.2345678f32, -9.876543e-5, 7777.777] {
            let bits = to_tf32(x).to_bits();
            assert_eq!(bits & 0x1FFF, 0, "low 13 bits must be zero, x={x}");
        }
    }

    #[test]
    fn tf32_relative_error_is_bounded() {
        // 10-bit mantissa => relative error <= 2^-11 after RNE.
        let bound = 2.0_f32.powi(-11) * 1.0001;
        let mut x = 1.0e-6f32;
        while x < 1.0e6 {
            let r = to_tf32(x);
            assert!(((r - x) / x).abs() <= bound, "x={x} r={r}");
            x *= 1.7;
        }
    }

    #[test]
    fn tf32_preserves_exact_small_integers() {
        for i in -1024i32..=1024 {
            let x = i as f32;
            assert_eq!(to_tf32(x), x, "small integers are exactly representable");
        }
    }

    #[test]
    fn tf32_handles_non_finite() {
        assert!(to_tf32(f32::NAN).is_nan());
        assert_eq!(to_tf32(f32::INFINITY), f32::INFINITY);
        assert_eq!(to_tf32(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    /// The pre-branchless scalar (early `is_finite` return), kept as the
    /// bit-equality oracle for the mask-select rewrite.
    fn to_tf32_branchy(x: f32) -> f32 {
        if !x.is_finite() {
            return x;
        }
        let bits = x.to_bits();
        let round_bit = 1u32 << 12;
        let keep_lsb = (bits >> 13) & 1;
        let rounded = bits.wrapping_add((round_bit - 1) + keep_lsb) & !0x1FFF;
        f32::from_bits(rounded)
    }

    #[test]
    fn branchless_matches_branchy_on_every_float_class() {
        // Every (sign, exponent) combination crossed with mantissas that
        // straddle the 13-bit rounding boundary: denormals (exp 0),
        // normals, the overflow-to-Inf edge (exp 254 rounding up), and
        // NaN/Inf payloads (exp 255) which must pass through verbatim.
        let mantissas = [
            0u32, 1, 0x0FFF, 0x1000, 0x1001, 0x1FFF, 0x2000, 0x3000, 0x7FF000, 0x7FFFFF,
        ];
        for sign in [0u32, 1] {
            for exp in 0u32..=255 {
                for &m in &mantissas {
                    let bits = (sign << 31) | (exp << 23) | m;
                    let x = f32::from_bits(bits);
                    let got = to_tf32(x).to_bits();
                    let want = to_tf32_branchy(x).to_bits();
                    assert_eq!(got, want, "bits {bits:#010X}");
                }
            }
        }
        // And a broad pseudo-random sweep of the full bit space.
        for i in 0..1_000_000u64 {
            let bits = crate::util::splitmix64(i) as u32;
            let x = f32::from_bits(bits);
            assert_eq!(
                to_tf32(x).to_bits(),
                to_tf32_branchy(x).to_bits(),
                "bits {bits:#010X}"
            );
        }
    }

    #[test]
    fn slice_rounding_matches_scalar() {
        let src: Vec<f32> = (0..257u64)
            .map(|i| f32::from_bits(crate::util::splitmix64(i ^ 0xABCD) as u32))
            .collect();
        let mut in_place = src.clone();
        to_tf32_slice(&mut in_place);
        let mut into = vec![0.0f32; src.len()];
        to_tf32_slice_into(&src, &mut into);
        for (i, &s) in src.iter().enumerate() {
            assert_eq!(in_place[i].to_bits(), to_tf32(s).to_bits());
            assert_eq!(into[i].to_bits(), to_tf32(s).to_bits());
        }
    }

    #[test]
    fn prerounded_mma_is_bit_identical_to_rounding_mma() {
        // Raw operands contaminated with every awkward class: NaN, ±Inf,
        // denormals, negative zero, and values that round up across the
        // mantissa boundary.
        let specials = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            1.0e-41,
            f32::from_bits(0x3F80_3000),
        ];
        for n in [1usize, 5, 8, 16, 19, 64] {
            let mut a = [0.0f32; 64];
            for (t, slot) in a.iter_mut().enumerate() {
                let r = crate::util::splitmix64(t as u64) as u32;
                *slot = match r % 5 {
                    0 => 0.0,
                    1 => specials[(r as usize / 5) % specials.len()],
                    _ => f32::from_bits(r),
                };
            }
            let b: Vec<f32> = (0..8 * n)
                .map(|t| {
                    let r = crate::util::splitmix64(1000 + t as u64) as u32;
                    match r % 4 {
                        0 => specials[(r as usize / 4) % specials.len()],
                        _ => f32::from_bits(r),
                    }
                })
                .collect();
            let mut c_old = vec![0.5f32; 8 * n];
            tf32_mma_8x8(&a, &b, &mut c_old, n);

            let mut a_pre = a;
            to_tf32_slice(&mut a_pre);
            let mut b_pre = b.clone();
            to_tf32_slice(&mut b_pre);
            let mut c_new = vec![0.5f32; 8 * n];
            tf32_mma_8x8_prerounded(&a_pre, &b_pre, &mut c_new, n);

            // The gather-free variant over per-row slices of the same
            // pre-rounded operand must match too; rows whose A column is
            // all zero may legally be empty.
            let rows: [&[f32]; 8] = std::array::from_fn(|k| {
                if (0..8).all(|i| a_pre[i * 8 + k] == 0.0) {
                    &[][..]
                } else {
                    &b_pre[k * n..(k + 1) * n]
                }
            });
            let mut c_rows = vec![0.5f32; 8 * n];
            tf32_mma_8x8_rows(&a_pre, &rows, &mut c_rows, n);

            // NaN-position-exact comparison: when several NaNs compete
            // for one accumulator, IEEE 754 leaves the surviving payload
            // unspecified and LLVM may commute `c + a*b` differently per
            // variant, so payloads are not stable — but a NaN must
            // appear at exactly the same coordinates, and every non-NaN
            // element (signed zeros, infinities included) must match
            // bitwise.
            let same = |x: f32, y: f32| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan());
            for j in 0..8 * n {
                assert!(
                    same(c_old[j], c_new[j]),
                    "n={n} elem {j}: {} vs {}",
                    c_old[j],
                    c_new[j]
                );
                assert!(
                    same(c_old[j], c_rows[j]),
                    "rows variant: n={n} elem {j}: {} vs {}",
                    c_old[j],
                    c_rows[j]
                );
            }
        }
    }

    #[test]
    fn tf32_rounds_to_nearest_even() {
        // Construct a value exactly halfway between two TF32 neighbours:
        // mantissa ...0 1000000000000 -> ties to even (round down).
        let down = f32::from_bits(0x3F80_0000); // 1.0
        let halfway_even = f32::from_bits(0x3F80_1000);
        assert_eq!(to_tf32(halfway_even), down);
        // ...1 1000000000000 -> ties to even (round up).
        let halfway_odd = f32::from_bits(0x3F80_3000);
        assert_eq!(to_tf32(halfway_odd).to_bits(), 0x3F80_4000);
    }

    #[test]
    fn dot_matches_manual() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        assert_eq!(tf32_dot(&a, &b), 32.0);
    }

    #[test]
    fn mma_8x8_identity() {
        let mut a = [0.0f32; 64];
        for i in 0..8 {
            a[i * 8 + i] = 1.0;
        }
        let n = 4;
        let b: Vec<f32> = (0..8 * n).map(|i| i as f32).collect();
        let mut c = vec![0.0f32; 8 * n];
        tf32_mma_8x8(&a, &b, &mut c, n);
        assert_eq!(c, b, "identity MMA must reproduce B");
    }

    #[test]
    fn mma_8x8_accumulates() {
        let a = [1.0f32; 64];
        let b = vec![1.0f32; 8 * 2];
        let mut c = vec![10.0f32; 8 * 2];
        tf32_mma_8x8(&a, &b, &mut c, 2);
        for &v in &c {
            assert_eq!(v, 18.0, "C += A*B over k=8 ones plus initial 10");
        }
    }

    #[test]
    fn tolerance_grows_with_reduction_length() {
        assert!(tf32_tolerance(10_000) > tf32_tolerance(10));
    }
}
