//! TF32 scalar emulation.
//!
//! NVIDIA tensor cores execute `mma.m16n8k8.tf32` by rounding each FP32
//! operand to TF32 (8-bit exponent, 10-bit mantissa) and accumulating in
//! full FP32. We reproduce exactly that: [`to_tf32`] performs
//! round-to-nearest-even truncation of the low 13 mantissa bits, and the
//! MMA helpers round operands before multiplying while keeping the
//! accumulator in FP32.

/// Round an `f32` to TF32 precision (10-bit mantissa) with
/// round-to-nearest-even, which is what Ampere-class tensor cores apply to
/// `mma` operands.
///
/// NaN and infinities are passed through unchanged; TF32 shares FP32's
/// 8-bit exponent so no range change occurs.
#[inline]
pub fn to_tf32(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    // 13 low mantissa bits are dropped. Round-to-nearest-even: add half of
    // the dropped ULP plus the parity bit of the kept part.
    let round_bit = 1u32 << 12;
    let keep_lsb = (bits >> 13) & 1;
    let rounded = bits.wrapping_add((round_bit - 1) + keep_lsb) & !0x1FFF;
    f32::from_bits(rounded)
}

/// Dot product with TF32 operand rounding and FP32 accumulation, mirroring
/// a chain of tensor-core MMAs along the K dimension.
#[inline]
pub fn tf32_dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += to_tf32(x) * to_tf32(y);
    }
    acc
}

/// One software tensor-core MMA over an 8×8 A block and an 8×`n` B slab:
/// `C += round_tf32(A) × round_tf32(B)` with FP32 accumulation.
///
/// `a` is row-major 8×8, `b` is row-major 8×`n`, `c` is row-major 8×`n`.
/// This is the numeric core of every TC kernel in the workspace; the
/// operand swap the paper performs (computing Bᵀ·Aᵀ to allow 8×8 A tiles
/// with `m16n8k8`) is a layout concern handled by callers and does not
/// change this arithmetic.
#[inline]
pub fn tf32_mma_8x8(a: &[f32; 64], b: &[f32], c: &mut [f32], n: usize) {
    debug_assert_eq!(b.len(), 8 * n);
    debug_assert_eq!(c.len(), 8 * n);
    for i in 0..8 {
        for k in 0..8 {
            let av = to_tf32(a[i * 8 + k]);
            if av == 0.0 {
                continue;
            }
            let brow = &b[k * n..k * n + n];
            let crow = &mut c[i * n..i * n + n];
            for j in 0..n {
                crow[j] += av * to_tf32(brow[j]);
            }
        }
    }
}

/// Relative tolerance for comparing TF32 results against an FP32 dense
/// reference. TF32 carries ~3 decimal digits; a chain of `k` accumulations
/// loses roughly `k.sqrt()` ULPs, so we scale with the reduction length.
#[inline]
pub fn tf32_tolerance(reduction_len: usize) -> f32 {
    // 2^-10 operand rounding, accumulated error grows ~ sqrt(k).
    1e-3 * (reduction_len.max(1) as f32).sqrt().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tf32_is_idempotent() {
        for &x in &[0.0f32, 1.0, -1.5, 2.625_17, 1e-20, 1e20, 123_456.79] {
            let once = to_tf32(x);
            assert_eq!(once.to_bits(), to_tf32(once).to_bits(), "x={x}");
        }
    }

    #[test]
    fn tf32_clears_low_mantissa_bits() {
        for &x in &[1.2345678f32, -9.876543e-5, 7777.777] {
            let bits = to_tf32(x).to_bits();
            assert_eq!(bits & 0x1FFF, 0, "low 13 bits must be zero, x={x}");
        }
    }

    #[test]
    fn tf32_relative_error_is_bounded() {
        // 10-bit mantissa => relative error <= 2^-11 after RNE.
        let bound = 2.0_f32.powi(-11) * 1.0001;
        let mut x = 1.0e-6f32;
        while x < 1.0e6 {
            let r = to_tf32(x);
            assert!(((r - x) / x).abs() <= bound, "x={x} r={r}");
            x *= 1.7;
        }
    }

    #[test]
    fn tf32_preserves_exact_small_integers() {
        for i in -1024i32..=1024 {
            let x = i as f32;
            assert_eq!(to_tf32(x), x, "small integers are exactly representable");
        }
    }

    #[test]
    fn tf32_handles_non_finite() {
        assert!(to_tf32(f32::NAN).is_nan());
        assert_eq!(to_tf32(f32::INFINITY), f32::INFINITY);
        assert_eq!(to_tf32(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn tf32_rounds_to_nearest_even() {
        // Construct a value exactly halfway between two TF32 neighbours:
        // mantissa ...0 1000000000000 -> ties to even (round down).
        let down = f32::from_bits(0x3F80_0000); // 1.0
        let halfway_even = f32::from_bits(0x3F80_1000);
        assert_eq!(to_tf32(halfway_even), down);
        // ...1 1000000000000 -> ties to even (round up).
        let halfway_odd = f32::from_bits(0x3F80_3000);
        assert_eq!(to_tf32(halfway_odd).to_bits(), 0x3F80_4000);
    }

    #[test]
    fn dot_matches_manual() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        assert_eq!(tf32_dot(&a, &b), 32.0);
    }

    #[test]
    fn mma_8x8_identity() {
        let mut a = [0.0f32; 64];
        for i in 0..8 {
            a[i * 8 + i] = 1.0;
        }
        let n = 4;
        let b: Vec<f32> = (0..8 * n).map(|i| i as f32).collect();
        let mut c = vec![0.0f32; 8 * n];
        tf32_mma_8x8(&a, &b, &mut c, n);
        assert_eq!(c, b, "identity MMA must reproduce B");
    }

    #[test]
    fn mma_8x8_accumulates() {
        let a = [1.0f32; 64];
        let b = vec![1.0f32; 8 * 2];
        let mut c = vec![10.0f32; 8 * 2];
        tf32_mma_8x8(&a, &b, &mut c, 2);
        for &v in &c {
            assert_eq!(v, 18.0, "C += A*B over k=8 ones plus initial 10");
        }
    }

    #[test]
    fn tolerance_grows_with_reduction_length() {
        assert!(tf32_tolerance(10_000) > tf32_tolerance(10));
    }
}
