//! Reduced-precision operand emulation beyond TF32.
//!
//! Tensor cores support several operand datatypes (the paper focuses on
//! TF32; Magicube-style kernels trade precision for throughput with FP16
//! and below). Each mode here rounds an `f32` operand to the target
//! type's representable set with round-to-nearest-even, keeping FP32
//! accumulation — matching how the hardware MMA units behave.

use crate::scalar::to_tf32;

/// Tensor-core operand precisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full FP32 (CUDA-core path; no operand rounding).
    Fp32,
    /// TF32: 8-bit exponent, 10-bit mantissa (the paper's datatype).
    Tf32,
    /// BF16: 8-bit exponent, 7-bit mantissa.
    Bf16,
    /// FP16: 5-bit exponent, 10-bit mantissa (overflow saturates to ±∞,
    /// as the conversion instruction does).
    Fp16,
}

impl Precision {
    /// All supported modes, highest precision first.
    pub const ALL: [Precision; 4] = [
        Precision::Fp32,
        Precision::Tf32,
        Precision::Bf16,
        Precision::Fp16,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Precision::Fp32 => "FP32",
            Precision::Tf32 => "TF32",
            Precision::Bf16 => "BF16",
            Precision::Fp16 => "FP16",
        }
    }

    /// Mantissa bits retained by the operand type.
    pub fn mantissa_bits(&self) -> u32 {
        match self {
            Precision::Fp32 => 23,
            Precision::Tf32 | Precision::Fp16 => 10,
            Precision::Bf16 => 7,
        }
    }

    /// Relative tensor-core MMA throughput versus TF32 on Ampere-class
    /// hardware (FP16/BF16 run at 2× the TF32 rate; FP32 emulation on
    /// tensor cores is unavailable — modeled at CUDA-core relative rate).
    pub fn relative_throughput(&self) -> f64 {
        match self {
            Precision::Fp32 => 0.125,
            Precision::Tf32 => 1.0,
            Precision::Bf16 | Precision::Fp16 => 2.0,
        }
    }
}

/// Round to BF16 (truncate to 7 mantissa bits, RNE).
#[inline]
pub fn to_bf16(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    let round_bit = 1u32 << 15;
    let keep_lsb = (bits >> 16) & 1;
    let rounded = bits.wrapping_add((round_bit - 1) + keep_lsb) & !0xFFFF;
    f32::from_bits(rounded)
}

/// Round to FP16 through an exact half-precision conversion
/// (RNE, saturating overflow to ±∞, flushing true halfs denormals is
/// modeled as gradual underflow like the hardware's F2F instruction).
#[inline]
pub fn to_fp16(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    const F16_MAX: f32 = 65504.0;
    if x.abs() > F16_MAX {
        return if x > 0.0 {
            f32::INFINITY
        } else {
            f32::NEG_INFINITY
        };
    }
    if x == 0.0 {
        return x;
    }
    let exp = x.abs().log2().floor() as i32;
    if exp < -14 {
        // Subnormal range: fixed quantum of 2^-24.
        let q = (x / 2.0f32.powi(-24)).round_ties_even();
        return q * 2.0f32.powi(-24);
    }
    // Normal range: 10 mantissa bits -> quantum 2^(exp-10).
    let quantum = 2.0f32.powi(exp - 10);
    (x / quantum).round_ties_even() * quantum
}

/// Round an operand to the given precision.
#[inline]
pub fn round_to(x: f32, p: Precision) -> f32 {
    match p {
        Precision::Fp32 => x,
        Precision::Tf32 => to_tf32(x),
        Precision::Bf16 => to_bf16(x),
        Precision::Fp16 => to_fp16(x),
    }
}

/// One 8×8×n MMA with operands rounded to `p`, FP32 accumulation —
/// the precision-parameterized sibling of
/// [`crate::scalar::tf32_mma_8x8`].
pub fn mma_8x8_with_precision(a: &[f32; 64], b: &[f32], c: &mut [f32], n: usize, p: Precision) {
    debug_assert_eq!(b.len(), 8 * n);
    debug_assert_eq!(c.len(), 8 * n);
    for i in 0..8 {
        for k in 0..8 {
            let av = round_to(a[i * 8 + k], p);
            if av == 0.0 {
                continue;
            }
            let brow = &b[k * n..k * n + n];
            let crow = &mut c[i * n..i * n + n];
            for j in 0..n {
                crow[j] += av * round_to(brow[j], p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_hierarchy_on_random_values() {
        // More mantissa bits -> no larger rounding error, pointwise.
        let mut worst = [0.0f64; 4];
        for i in 0..2000u64 {
            let h = crate::util::splitmix64(i);
            let x = ((h >> 40) as f32 / (1u64 << 23) as f32 - 1.0) * 100.0;
            if x == 0.0 {
                continue;
            }
            for (j, p) in Precision::ALL.iter().enumerate() {
                let err = ((round_to(x, *p) - x) / x).abs() as f64;
                worst[j] = worst[j].max(err);
            }
        }
        assert_eq!(worst[0], 0.0, "FP32 is exact");
        assert!(worst[1] <= 2.0f64.powi(-11) * 1.001, "TF32 bound");
        assert!(
            worst[3] <= 2.0f64.powi(-11) * 1.001,
            "FP16 bound (normal range)"
        );
        assert!(worst[2] <= 2.0f64.powi(-8) * 1.001, "BF16 bound");
        assert!(worst[2] > worst[1], "BF16 coarser than TF32");
    }

    #[test]
    fn bf16_clears_low_16_bits() {
        for &x in &[1.2345f32, -777.77, 3e-20] {
            assert_eq!(to_bf16(x).to_bits() & 0xFFFF, 0);
        }
        assert!(to_bf16(f32::NAN).is_nan());
    }

    #[test]
    fn fp16_saturates_and_handles_subnormals() {
        assert_eq!(to_fp16(1e6), f32::INFINITY);
        assert_eq!(to_fp16(-1e6), f32::NEG_INFINITY);
        assert_eq!(to_fp16(65504.0), 65504.0, "f16 max is exact");
        assert_eq!(to_fp16(0.0), 0.0);
        // Smallest f16 subnormal is 2^-24; half of it rounds to zero
        // (ties-to-even), anything above half rounds up.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(to_fp16(tiny), tiny);
        assert_eq!(to_fp16(tiny * 0.4), 0.0);
        assert_eq!(to_fp16(1.0 + 1.0 / 4096.0), 1.0, "below the f16 ULP");
    }

    #[test]
    fn tf32_and_fp16_agree_on_small_integers() {
        // Both carry 10 mantissa bits: integers up to 2048 are exact.
        for i in 0..2048 {
            let x = i as f32;
            assert_eq!(round_to(x, Precision::Tf32), x);
            assert_eq!(round_to(x, Precision::Fp16), x);
        }
    }

    #[test]
    fn mma_precision_fp32_matches_exact() {
        let mut a = [0.0f32; 64];
        for (i, v) in a.iter_mut().enumerate() {
            *v = (i % 7) as f32 * 0.25;
        }
        let b: Vec<f32> = (0..8 * 4).map(|i| (i % 5) as f32 * 0.5).collect();
        let mut c32 = vec![0.0f32; 8 * 4];
        mma_8x8_with_precision(&a, &b, &mut c32, 4, Precision::Fp32);
        let mut ctf = vec![0.0f32; 8 * 4];
        crate::scalar::tf32_mma_8x8(&a, &b, &mut ctf, 4);
        // These inputs are exactly representable everywhere.
        assert_eq!(c32, ctf);
    }

    #[test]
    fn relative_throughput_ordering() {
        assert!(Precision::Fp16.relative_throughput() > Precision::Tf32.relative_throughput());
        assert!(Precision::Tf32.relative_throughput() > Precision::Fp32.relative_throughput());
        assert_eq!(Precision::Tf32.mantissa_bits(), 10);
        assert_eq!(Precision::Bf16.name(), "BF16");
    }
}
