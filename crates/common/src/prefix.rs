//! Prefix-sum helpers used by every compressed-format builder.

/// In-place exclusive prefix sum: `[3,1,4]` becomes `[0,3,4]` and the total
/// (8) is returned. This is the classic CSR `row_ptr` construction step.
pub fn exclusive_prefix_sum(v: &mut [usize]) -> usize {
    let mut acc = 0usize;
    for x in v.iter_mut() {
        let cur = *x;
        *x = acc;
        acc += cur;
    }
    acc
}

/// Build a CSR-style offsets array (length `counts.len() + 1`) from bucket
/// counts: `offsets[i]..offsets[i+1]` spans bucket `i`.
pub fn counts_to_offsets(counts: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &c in counts {
        acc += c;
        offsets.push(acc);
    }
    offsets
}

/// Given a monotone offsets array, find the bucket containing `pos` via
/// binary search (`offsets[b] <= pos < offsets[b+1]`).
pub fn bucket_of(offsets: &[usize], pos: usize) -> usize {
    debug_assert!(offsets.len() >= 2);
    debug_assert!(pos < *offsets.last().unwrap());
    match offsets.binary_search(&pos) {
        Ok(mut i) => {
            // Skip empty buckets that share the same offset.
            while offsets[i + 1] == pos {
                i += 1;
            }
            i
        }
        Err(i) => i - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_prefix_basic() {
        let mut v = vec![3, 1, 4, 1, 5];
        let total = exclusive_prefix_sum(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn exclusive_prefix_empty() {
        let mut v: Vec<usize> = vec![];
        assert_eq!(exclusive_prefix_sum(&mut v), 0);
    }

    #[test]
    fn counts_to_offsets_basic() {
        assert_eq!(counts_to_offsets(&[2, 0, 3]), vec![0, 2, 2, 5]);
        assert_eq!(counts_to_offsets(&[]), vec![0]);
    }

    #[test]
    fn bucket_of_finds_correct_bucket() {
        let offsets = vec![0, 2, 2, 5, 5, 7];
        assert_eq!(bucket_of(&offsets, 0), 0);
        assert_eq!(bucket_of(&offsets, 1), 0);
        assert_eq!(bucket_of(&offsets, 2), 2, "skips the empty bucket 1");
        assert_eq!(bucket_of(&offsets, 4), 2);
        assert_eq!(bucket_of(&offsets, 5), 4, "skips the empty bucket 3");
        assert_eq!(bucket_of(&offsets, 6), 4);
    }

    #[test]
    fn bucket_of_roundtrips_counts() {
        let counts = vec![1usize, 0, 0, 4, 2, 0, 1];
        let offsets = counts_to_offsets(&counts);
        for (bucket, &c) in counts.iter().enumerate() {
            for k in 0..c {
                assert_eq!(bucket_of(&offsets, offsets[bucket] + k), bucket);
            }
        }
    }
}
