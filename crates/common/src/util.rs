//! Index and alignment helpers.

/// Ceiling division for usize, used everywhere tiles are counted.
#[inline]
pub const fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Round `a` up to the next multiple of `b`.
#[inline]
pub const fn round_up(a: usize, b: usize) -> usize {
    div_ceil(a, b) * b
}

/// Splitmix64 — the tiny deterministic hash/PRNG step used by the LSH
/// reorderings and by workload seeding. Not cryptographic; chosen for
/// reproducibility across platforms.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Check that `perm` is a valid permutation of `0..perm.len()`.
pub fn is_permutation(perm: &[u32]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        let p = p as usize;
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Invert a permutation: if `perm[old] = new`, returns `inv[new] = old`.
pub fn invert_permutation(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as u32;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_ceil_and_round_up() {
        assert_eq!(div_ceil(0, 8), 0);
        assert_eq!(div_ceil(1, 8), 1);
        assert_eq!(div_ceil(8, 8), 1);
        assert_eq!(div_ceil(9, 8), 2);
        assert_eq!(round_up(9, 8), 16);
        assert_eq!(round_up(16, 8), 16);
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Avalanche sanity: flipping one input bit changes many output bits.
        let d = (splitmix64(42) ^ splitmix64(43)).count_ones();
        assert!(d > 16, "poor diffusion: {d} bits");
    }

    #[test]
    fn permutation_validation() {
        assert!(is_permutation(&[0, 1, 2]));
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 2]), "duplicate");
        assert!(!is_permutation(&[0, 3, 1]), "out of range");
        assert!(is_permutation(&[]));
    }

    #[test]
    fn inversion_roundtrip() {
        let p = vec![2u32, 0, 3, 1];
        let inv = invert_permutation(&p);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        for (old, &new) in p.iter().enumerate() {
            assert_eq!(inv[new as usize] as usize, old);
        }
    }
}
