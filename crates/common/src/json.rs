//! Dependency-free JSON support: a value type, a strict parser, a
//! pretty writer, and the [`ToJson`] trait the benchmark harness uses
//! to persist machine-readable results (replacing the serde stack,
//! which is unavailable offline).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::ops::Index;

/// A JSON document value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is not preserved (keys sort).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Render with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 == map.len() { "\n" } else { ",\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the full input must be one value).
    pub fn parse(text: &str) -> std::result::Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            let _ = write!(out, "{}", x as i64);
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> std::result::Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> std::result::Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> std::result::Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> std::result::Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> std::result::Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at offset {start}: {e}"))
    }

    fn array(&mut self) -> std::result::Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> std::result::Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

impl Index<usize> for Json {
    type Output = Json;
    fn index(&self, i: usize) -> &Json {
        static NULL: Json = Json::Null;
        self.as_array().and_then(|v| v.get(i)).unwrap_or(&NULL)
    }
}

impl Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        static NULL: Json = Json::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// Conversion into a [`Json`] value — the serialization trait for
/// benchmark records. Derive-like impls for plain structs come from
/// [`crate::impl_to_json!`].
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

macro_rules! to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}

to_json_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

/// Implement [`ToJson`] for a struct by listing its fields:
/// `impl_to_json!(Row { name, time_s, speedup });`
#[macro_export]
macro_rules! impl_to_json {
    ($t:ty { $($f:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $t {
            fn to_json(&self) -> $crate::json::Json {
                let mut map = std::collections::BTreeMap::new();
                $(map.insert(
                    stringify!($f).to_string(),
                    $crate::json::ToJson::to_json(&self.$f),
                );)*
                $crate::json::Json::Obj(map)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": "x\"y", "c": null, "d": true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["b"], "x\"y");
        assert_eq!(v["c"], Json::Null);
        let re = Json::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(v, re);
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "12abc", "[1] x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn struct_macro_serializes_fields() {
        struct Row {
            name: &'static str,
            speedup: f64,
        }
        crate::impl_to_json!(Row { name, speedup });
        let r = Row {
            name: "acc",
            speedup: 2.5,
        };
        let j = r.to_json();
        assert_eq!(j["name"], "acc");
        assert_eq!(j["speedup"].as_f64(), Some(2.5));
    }

    #[test]
    fn chrome_trace_style_documents_parse() {
        let text = "[\n  {\"name\": \"TB0\", \"ph\": \"X\", \"ts\": 0.000, \"tid\": 1},\n  {\"name\": \"TB1\", \"ph\": \"X\", \"ts\": 1.500, \"tid\": 0}\n]\n";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert_eq!(v[0]["ph"], "X");
        assert_eq!(v[1]["ts"].as_f64(), Some(1.5));
    }
}
