//! Small statistics helpers used by the evaluation harness.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean of strictly positive values; 0.0 for an empty slice.
/// Non-positive entries are skipped (they would make the geomean undefined),
/// matching how SpMM papers aggregate speedups.
pub fn geomean(xs: &[f64]) -> f64 {
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for &x in xs {
        if x > 0.0 {
            log_sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Mean absolute deviation around the mean — the aggregation inside the
/// paper's IBD metric (Eq. 3).
pub fn mean_abs_deviation(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).abs()).sum::<f64>() / xs.len() as f64
}

/// Median (midpoint of the two central values for even lengths);
/// 0.0 for an empty slice. NaNs sort last.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

/// Maximum of a slice; 0.0 for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0f64, f64::max)
}

/// Population standard deviation; 0.0 for an empty slice.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_skips_nonpositive() {
        let g = geomean(&[0.0, -3.0, 2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mad_basic() {
        // values 1,3 -> mean 2 -> deviations 1,1 -> MAD 1.
        assert_eq!(mean_abs_deviation(&[1.0, 3.0]), 1.0);
        assert_eq!(mean_abs_deviation(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn stddev_basic() {
        assert_eq!(stddev(&[2.0, 2.0]), 0.0);
        let s = stddev(&[1.0, 3.0]);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_basic() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[4.0]), 4.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn max_basic() {
        assert_eq!(max(&[1.0, 9.0, 3.0]), 9.0);
        assert_eq!(max(&[]), 0.0);
    }
}
