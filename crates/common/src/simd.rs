//! Explicit-SIMD TF32 compute core with runtime ISA dispatch.
//!
//! The MMA inner loop and the TF32 rounding passes are the hot paths of
//! every kernel in the workspace. [`crate::scalar`] shapes them so LLVM
//! *can* vectorize, but nothing guarantees it does, and there is no
//! wider-than-128-bit path at all. This module goes the rest of the way:
//! hand-written `core::arch` intrinsics kernels per ISA tier — AVX-512F,
//! AVX2(+FMA probe), NEON — behind a one-time capability probe
//! ([`IsaTier::probe`]), with the scalar code as the universal fallback.
//!
//! **The contract is bit-identity.** Every tier produces NaN-position-
//! exact, bitwise-equal output versus the scalar path. Three properties
//! make that possible:
//!
//! 1. **No hardware FMA in the MMA core.** Scalar `c[j] += av * b[j]`
//!    rounds twice (after the multiply, after the add). A fused
//!    multiply-add rounds once and would diverge in the last ULP, so the
//!    vector kernels use separate multiply and add intrinsics
//!    (`_mm256_mul_ps` + `_mm256_add_ps`, never `vfmadd`). The AVX2 tier
//!    still *probes* for FMA — it names the ISA level, not an
//!    instruction we emit.
//! 2. **Per-lane accumulation order is preserved.** The scalar nest is
//!    `i, k, j`: each output lane `(i, j)` receives its additions in
//!    ascending `k`. The vector kernels register-block over `j` (load
//!    the C chunk once, run the full `k` loop in registers, store once)
//!    which reorders only *across* lanes, never within one — so every
//!    lane sees the identical rounding sequence.
//! 3. **The `av == 0.0` skip is replicated exactly.** It is semantically
//!    load-bearing (`0 × Inf` would inject NaN), and in the row-slice
//!    variant it also guarantees empty rows for all-zero A columns are
//!    never touched; the `[..n]` bounds check runs only under `av != 0`,
//!    mirroring the scalar panic semantics.
//!
//! The selected tier is resolved **once at plan-compile time**
//! (`AccConfig::isa` pin → `SPMM_FORCE_ISA` env override → probe) and
//! recorded in the plan; see `spmm_kernels::plan`. Serialized plan
//! artifacts carry the tier as advisory metadata only — loaders re-probe
//! on the executing host.

#![deny(unsafe_op_in_unsafe_fn)]

use crate::scalar::{
    tf32_mma_8x8_prerounded, tf32_mma_8x8_rows, to_tf32_slice, to_tf32_slice_into,
};
use std::sync::OnceLock;

/// An ISA capability tier the compute core can dispatch to.
///
/// Ordered from narrowest to widest; [`IsaTier::probe`] selects the
/// widest available tier on the running host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsaTier {
    /// Portable scalar Rust — always available, the bit-identity oracle.
    Scalar,
    /// AArch64 NEON: 128-bit vectors, 4 f32 lanes.
    Neon,
    /// x86-64 AVX2 + FMA: 256-bit vectors, 8 f32 lanes. (FMA is probed
    /// as part of the tier definition but never emitted — see the
    /// module docs on bit-identity.)
    Avx2Fma,
    /// x86-64 AVX-512F: 512-bit vectors, 16 f32 lanes.
    Avx512f,
}

impl IsaTier {
    /// Every tier, narrowest first. Test matrices iterate this and
    /// skip-with-log the tiers the host lacks.
    pub const ALL: [IsaTier; 4] = [
        IsaTier::Scalar,
        IsaTier::Neon,
        IsaTier::Avx2Fma,
        IsaTier::Avx512f,
    ];

    /// Stable numeric code, used by the plan IR and trace counters.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            IsaTier::Scalar => 0,
            IsaTier::Neon => 1,
            IsaTier::Avx2Fma => 2,
            IsaTier::Avx512f => 3,
        }
    }

    /// Inverse of [`IsaTier::code`].
    pub fn from_code(code: u8) -> Option<IsaTier> {
        IsaTier::ALL.into_iter().find(|t| t.code() == code)
    }

    /// Short lower-case name, used in the plan IR header, bench entry
    /// names (`mma-core-avx2`), and the `SPMM_FORCE_ISA` override.
    #[inline]
    pub fn name(self) -> &'static str {
        match self {
            IsaTier::Scalar => "scalar",
            IsaTier::Neon => "neon",
            IsaTier::Avx2Fma => "avx2",
            IsaTier::Avx512f => "avx512",
        }
    }

    /// Inverse of [`IsaTier::name`] (case-insensitive; accepts a few
    /// obvious aliases).
    pub fn from_name(name: &str) -> Option<IsaTier> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(IsaTier::Scalar),
            "neon" => Some(IsaTier::Neon),
            "avx2" | "avx2fma" | "avx2+fma" => Some(IsaTier::Avx2Fma),
            "avx512" | "avx512f" => Some(IsaTier::Avx512f),
            _ => None,
        }
    }

    /// f32 lanes per vector register at this tier (1 for scalar).
    #[inline]
    pub fn simd_lanes(self) -> u32 {
        match self {
            IsaTier::Scalar => 1,
            IsaTier::Neon => 4,
            IsaTier::Avx2Fma => 8,
            IsaTier::Avx512f => 16,
        }
    }

    /// Whether the running host can execute this tier's kernels.
    ///
    /// The std feature macros cache their CPUID probe, so this is a
    /// relaxed atomic load after the first call — cheap enough for the
    /// dispatch wrappers to re-check on every entry (which is what keeps
    /// them sound even if handed an unresolved tier).
    pub fn is_available(self) -> bool {
        match self {
            IsaTier::Scalar => true,
            IsaTier::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
            IsaTier::Avx2Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            IsaTier::Avx512f => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx512f")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }

    /// The widest tier the running host supports, ignoring overrides.
    pub fn detect_best() -> IsaTier {
        IsaTier::ALL
            .into_iter()
            .rev()
            .find(|t| t.is_available())
            .unwrap_or(IsaTier::Scalar)
    }

    /// The process-wide default tier: the `SPMM_FORCE_ISA` environment
    /// override if set and available, else [`IsaTier::detect_best`].
    ///
    /// Resolved once and cached. An unrecognized or unavailable forced
    /// tier logs one warning to stderr and falls back to the probe —
    /// never a silent no-op, never a crash. Plan compilation resolves
    /// through [`IsaTier::resolve`] so an `AccConfig::isa` pin takes
    /// precedence over the environment.
    pub fn probe() -> IsaTier {
        static PROBED: OnceLock<IsaTier> = OnceLock::new();
        *PROBED.get_or_init(|| match std::env::var("SPMM_FORCE_ISA") {
            Ok(raw) => match IsaTier::from_name(raw.trim()) {
                Some(t) if t.is_available() => t,
                Some(t) => {
                    let best = IsaTier::detect_best();
                    eprintln!(
                        "spmm: SPMM_FORCE_ISA={} not available on this host; using {}",
                        t.name(),
                        best.name()
                    );
                    best
                }
                None => {
                    let best = IsaTier::detect_best();
                    eprintln!(
                        "spmm: unrecognized SPMM_FORCE_ISA={raw:?} (expected one of \
                         scalar|neon|avx2|avx512); using {}",
                        best.name()
                    );
                    best
                }
            },
            Err(_) => IsaTier::detect_best(),
        })
    }

    /// Resolve the tier a plan should bind: an explicit pin if given
    /// (erroring when the host cannot run it — a pinned config is a
    /// correctness statement, not a hint), else the process default
    /// from [`IsaTier::probe`].
    pub fn resolve(pinned: Option<IsaTier>) -> crate::Result<IsaTier> {
        match pinned {
            Some(t) if t.is_available() => Ok(t),
            Some(t) => Err(crate::SpmmError::InvalidConfig(format!(
                "isa tier '{}' pinned via AccConfig::isa is not available on this host \
                 (best available: '{}')",
                t.name(),
                IsaTier::detect_best().name()
            ))),
            None => Ok(IsaTier::probe()),
        }
    }
}

impl std::fmt::Display for IsaTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// `Scalar` — the one tier every host has. This is the *neutral*
/// default for zero-initialized stats structs, not the probe result;
/// resolution always goes through [`IsaTier::resolve`]/[`IsaTier::probe`].
impl Default for IsaTier {
    fn default() -> Self {
        IsaTier::Scalar
    }
}

// ---------------------------------------------------------------------------
// Dispatch wrappers
// ---------------------------------------------------------------------------

/// [`to_tf32_slice`] at an explicit tier (in place).
///
/// Falls back to scalar if `tier` is not available on this host — the
/// output is bit-identical either way, so the fallback is semantically
/// invisible; it exists to keep this wrapper safe to call with any tier
/// value (e.g. one deserialized from a plan artifact).
#[inline]
pub fn to_tf32_slice_tier(xs: &mut [f32], tier: IsaTier) {
    match tier {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx512f if tier.is_available() => {
            // SAFETY: avx512f availability just checked.
            unsafe { x86::to_tf32_inplace_avx512(xs) }
        }
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2Fma if tier.is_available() => {
            // SAFETY: avx2 availability just checked.
            unsafe { x86::to_tf32_inplace_avx2(xs) }
        }
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon if tier.is_available() => {
            // SAFETY: neon availability just checked.
            unsafe { neon::to_tf32_inplace_neon(xs) }
        }
        _ => to_tf32_slice(xs),
    }
}

/// [`to_tf32_slice_into`] at an explicit tier.
#[inline]
pub fn to_tf32_slice_into_tier(src: &[f32], dst: &mut [f32], tier: IsaTier) {
    debug_assert_eq!(src.len(), dst.len());
    match tier {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx512f if tier.is_available() => {
            // SAFETY: avx512f availability just checked.
            unsafe { x86::to_tf32_into_avx512(src, dst) }
        }
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2Fma if tier.is_available() => {
            // SAFETY: avx2 availability just checked.
            unsafe { x86::to_tf32_into_avx2(src, dst) }
        }
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon if tier.is_available() => {
            // SAFETY: neon availability just checked.
            unsafe { neon::to_tf32_into_neon(src, dst) }
        }
        _ => to_tf32_slice_into(src, dst),
    }
}

/// [`tf32_mma_8x8_prerounded`] at an explicit tier.
#[inline]
pub fn mma_8x8_prerounded_tier(a: &[f32; 64], b: &[f32], c: &mut [f32], n: usize, tier: IsaTier) {
    debug_assert_eq!(b.len(), 8 * n);
    debug_assert_eq!(c.len(), 8 * n);
    match tier {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx512f if tier.is_available() => {
            let rows = contiguous_rows(b, n);
            let c = &mut c[..8 * n];
            // SAFETY: avx512f availability checked above; every row
            // pointer covers a `[..n]`-checked slice of `b`, and `c`
            // was just sliced to exactly `8 * n` floats.
            unsafe { x86::mma_tile_avx512(a, &rows, c, n) }
        }
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2Fma if tier.is_available() => {
            let rows = contiguous_rows(b, n);
            let c = &mut c[..8 * n];
            // SAFETY: avx2 availability checked above; pointers as in
            // the avx512 arm.
            unsafe { x86::mma_tile_avx2(a, &rows, c, n) }
        }
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon if tier.is_available() => {
            let rows = contiguous_rows(b, n);
            let c = &mut c[..8 * n];
            // SAFETY: neon availability checked above; pointers as in
            // the x86 arms.
            unsafe { neon::mma_tile_neon(a, &rows, c, n) }
        }
        _ => tf32_mma_8x8_prerounded(a, b, c, n),
    }
}

/// [`tf32_mma_8x8_rows`] at an explicit tier.
///
/// Rows whose A column is entirely zero may be empty slices; the
/// pointer-builder maps them to null pointers the tile kernels never
/// dereference, exactly like the scalar `av == 0.0` skip.
#[inline]
pub fn mma_8x8_rows_tier(
    a: &[f32; 64],
    rows: &[&[f32]; 8],
    c: &mut [f32],
    n: usize,
    tier: IsaTier,
) {
    debug_assert_eq!(c.len(), 8 * n);
    match tier {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx512f if tier.is_available() => {
            let rowp = active_rows(a, rows, n);
            let c = &mut c[..8 * n];
            // SAFETY: avx512f availability checked above; every non-null
            // row pointer covers a `[..n]`-checked slice, null pointers
            // belong to all-zero A columns the kernel never reads, and
            // `c` was just sliced to exactly `8 * n` floats.
            unsafe { x86::mma_tile_avx512(a, &rowp, c, n) }
        }
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2Fma if tier.is_available() => {
            let rowp = active_rows(a, rows, n);
            let c = &mut c[..8 * n];
            // SAFETY: avx2 availability checked above; pointers as in
            // the avx512 arm.
            unsafe { x86::mma_tile_avx2(a, &rowp, c, n) }
        }
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon if tier.is_available() => {
            let rowp = active_rows(a, rows, n);
            let c = &mut c[..8 * n];
            // SAFETY: neon availability checked above; pointers as in
            // the x86 arms.
            unsafe { neon::mma_tile_neon(a, &rowp, c, n) }
        }
        _ => tf32_mma_8x8_rows(a, rows, c, n),
    }
}

/// `crow[j] += v * brow[j]` over `crow.len()` lanes at an explicit tier
/// — the per-edge accumulation of the TCF kernel. **No** `v == 0.0`
/// skip: the scalar TCF loop multiplies unconditionally, and
/// bit-identity means replicating exactly that (a zero edge value
/// against a non-finite B element must produce the same NaN it always
/// did).
#[inline]
pub fn axpy_tier(v: f32, brow: &[f32], crow: &mut [f32], tier: IsaTier) {
    let n = crow.len();
    debug_assert!(brow.len() >= n);
    match tier {
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx512f if tier.is_available() => {
            // SAFETY: avx512f availability just checked; the single row
            // pointer is valid for `n` reads via the `[..n]` slice.
            unsafe { x86::mma_row_avx512(&[v], &[brow[..n].as_ptr()], crow) }
        }
        #[cfg(target_arch = "x86_64")]
        IsaTier::Avx2Fma if tier.is_available() => {
            // SAFETY: avx2 availability just checked; pointer as above.
            unsafe { x86::mma_row_avx2(&[v], &[brow[..n].as_ptr()], crow) }
        }
        #[cfg(target_arch = "aarch64")]
        IsaTier::Neon if tier.is_available() => {
            // SAFETY: neon availability just checked; pointer as above.
            unsafe { neon::mma_row_neon(&[v], &[brow[..n].as_ptr()], crow) }
        }
        _ => {
            for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                *cj += v * bj;
            }
        }
    }
}

/// Base pointers of the eight B block rows of a contiguous `8 × n`
/// operand, each `[..n]`-bounds-checked up front.
#[inline]
#[allow(dead_code)] // unused on ISAs with no vector tier (e.g. riscv)
fn contiguous_rows(b: &[f32], n: usize) -> [*const f32; 8] {
    std::array::from_fn(|k| b[k * n..k * n + n].as_ptr())
}

/// Base pointers for per-row stage slices: a column whose A slots are
/// all zero gets a null pointer (its slice may legitimately be empty
/// and must never be touched — the tile kernels only dereference under
/// a nonzero A slot, mirroring the scalar `av == 0.0` skip). A *used*
/// short row fails the `[..n]` check here, inheriting the scalar panic
/// semantics for structurally-impossible inputs.
#[inline]
#[allow(dead_code)] // unused on ISAs with no vector tier
fn active_rows(a: &[f32; 64], rows: &[&[f32]; 8], n: usize) -> [*const f32; 8] {
    std::array::from_fn(|k| {
        if (0..8).any(|i| a[i * 8 + k] != 0.0) {
            rows[k][..n].as_ptr()
        } else {
            std::ptr::null()
        }
    })
}

/// FP32 exponent field mask (all-ones exponent = NaN/Inf), duplicated
/// from [`crate::scalar`] for the vector rounding kernels.
#[allow(dead_code)] // unused on ISAs with no vector tier
const EXP_MASK: u32 = 0x7F80_0000;

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX2 / AVX-512F kernels. Every function is `unsafe fn` with a
    //! `#[target_feature]` gate: the caller must have verified the
    //! feature (the dispatch wrappers re-check `is_available()` on
    //! every call). Pointer arithmetic stays within the caller-supplied
    //! slices/rows by construction — see the per-block SAFETY comments.

    use super::EXP_MASK;
    use crate::scalar::to_tf32;
    use core::arch::x86_64::*;

    /// Round `n` floats from `src` into `dst` (AVX2). `src == dst` is
    /// the in-place mode; partial overlap is forbidden.
    ///
    /// SAFETY (caller): avx2 enabled; `src` and `dst` are valid for
    /// `n` reads/writes and either identical or disjoint.
    #[target_feature(enable = "avx2")]
    unsafe fn tf32_round_ptr_avx2(src: *const f32, dst: *mut f32, n: usize) {
        let mut i = 0;
        // SAFETY: all lane offsets stay `< n` (loop bound `i + 8 <= n`);
        // unaligned load/store intrinsics have no alignment demand, and
        // the exact-aliasing in-place mode is fine because each lane is
        // read before it is written within one iteration.
        unsafe {
            let exp = _mm256_set1_epi32(EXP_MASK as i32);
            let low = _mm256_set1_epi32(0x1FFF);
            let half_minus_1 = _mm256_set1_epi32(0x0FFF);
            let one = _mm256_set1_epi32(1);
            while i + 8 <= n {
                let v = _mm256_loadu_si256(src.add(i) as *const __m256i);
                // rounded = (bits + 0x0FFF + keep_lsb) & !0x1FFF
                let keep_lsb = _mm256_and_si256(_mm256_srli_epi32::<13>(v), one);
                let bump = _mm256_add_epi32(half_minus_1, keep_lsb);
                let rounded = _mm256_andnot_si256(low, _mm256_add_epi32(v, bump));
                // NaN/Inf lanes (exponent all ones) pass through.
                let is_special = _mm256_cmpeq_epi32(_mm256_and_si256(v, exp), exp);
                let out = _mm256_blendv_epi8(rounded, v, is_special);
                _mm256_storeu_si256(dst.add(i) as *mut __m256i, out);
                i += 8;
            }
            while i < n {
                *dst.add(i) = to_tf32(*src.add(i));
                i += 1;
            }
        }
    }

    /// Round `n` floats from `src` into `dst` (AVX-512F); same contract
    /// as [`tf32_round_ptr_avx2`].
    #[target_feature(enable = "avx512f")]
    unsafe fn tf32_round_ptr_avx512(src: *const f32, dst: *mut f32, n: usize) {
        let mut i = 0;
        // SAFETY: as in the AVX2 variant, with 16-lane steps.
        unsafe {
            let exp = _mm512_set1_epi32(EXP_MASK as i32);
            let low = _mm512_set1_epi32(0x1FFF);
            let half_minus_1 = _mm512_set1_epi32(0x0FFF);
            let one = _mm512_set1_epi32(1);
            while i + 16 <= n {
                let v = _mm512_loadu_si512(src.add(i) as *const __m512i);
                let keep_lsb = _mm512_and_si512(_mm512_srli_epi32::<13>(v), one);
                let bump = _mm512_add_epi32(half_minus_1, keep_lsb);
                let rounded = _mm512_andnot_si512(low, _mm512_add_epi32(v, bump));
                let is_special = _mm512_cmpeq_epi32_mask(_mm512_and_si512(v, exp), exp);
                let out = _mm512_mask_blend_epi32(is_special, rounded, v);
                _mm512_storeu_si512(dst.add(i) as *mut __m512i, out);
                i += 16;
            }
            while i < n {
                *dst.add(i) = to_tf32(*src.add(i));
                i += 1;
            }
        }
    }

    /// SAFETY (caller): avx2 enabled.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn to_tf32_inplace_avx2(xs: &mut [f32]) {
        // SAFETY: exact aliasing (src == dst) is the supported in-place
        // mode of the ptr core.
        unsafe { tf32_round_ptr_avx2(xs.as_ptr(), xs.as_mut_ptr(), xs.len()) }
    }

    /// SAFETY (caller): avx2 enabled; `src.len() == dst.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn to_tf32_into_avx2(src: &[f32], dst: &mut [f32]) {
        let n = src.len().min(dst.len());
        // SAFETY: `n` floats valid on both sides; distinct borrows so no
        // partial overlap.
        unsafe { tf32_round_ptr_avx2(src.as_ptr(), dst.as_mut_ptr(), n) }
    }

    /// SAFETY (caller): avx512f enabled.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn to_tf32_inplace_avx512(xs: &mut [f32]) {
        // SAFETY: exact aliasing is the supported in-place mode.
        unsafe { tf32_round_ptr_avx512(xs.as_ptr(), xs.as_mut_ptr(), xs.len()) }
    }

    /// SAFETY (caller): avx512f enabled; `src.len() == dst.len()`.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn to_tf32_into_avx512(src: &[f32], dst: &mut [f32]) {
        let n = src.len().min(dst.len());
        // SAFETY: `n` floats valid on both sides.
        unsafe { tf32_round_ptr_avx512(src.as_ptr(), dst.as_mut_ptr(), n) }
    }

    /// One C-row update `crow[j] += Σ_t avs[t] * rows[t][j]` (AVX2),
    /// register-blocked over `j` so each C chunk is loaded and stored
    /// once for the whole `k` loop. Separate `mul` + `add` — **not**
    /// `vfmadd` — to match the scalar path's two roundings; per-lane
    /// addition order is ascending `t` (== ascending `k`), identical to
    /// scalar.
    ///
    /// SAFETY (caller): avx2 enabled; every `ptrs[t]` is valid for
    /// `crow.len()` reads and does not alias `crow`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mma_row_avx2(avs: &[f32], ptrs: &[*const f32], crow: &mut [f32]) {
        let n = crow.len();
        let cp = crow.as_mut_ptr();
        let nt = avs.len().min(ptrs.len());
        let mut j = 0;
        // SAFETY: all offsets stay `< n`; `cp` is the only mutable
        // pointer and the B rows are read-only for the duration.
        unsafe {
            // 16-lane (2×ymm) main blocks.
            while j + 16 <= n {
                let mut c0 = _mm256_loadu_ps(cp.add(j));
                let mut c1 = _mm256_loadu_ps(cp.add(j + 8));
                for t in 0..nt {
                    let av = _mm256_set1_ps(avs[t]);
                    let b0 = _mm256_loadu_ps(ptrs[t].add(j));
                    let b1 = _mm256_loadu_ps(ptrs[t].add(j + 8));
                    c0 = _mm256_add_ps(c0, _mm256_mul_ps(av, b0));
                    c1 = _mm256_add_ps(c1, _mm256_mul_ps(av, b1));
                }
                _mm256_storeu_ps(cp.add(j), c0);
                _mm256_storeu_ps(cp.add(j + 8), c1);
                j += 16;
            }
            while j + 8 <= n {
                let mut c0 = _mm256_loadu_ps(cp.add(j));
                for t in 0..nt {
                    let av = _mm256_set1_ps(avs[t]);
                    let b0 = _mm256_loadu_ps(ptrs[t].add(j));
                    c0 = _mm256_add_ps(c0, _mm256_mul_ps(av, b0));
                }
                _mm256_storeu_ps(cp.add(j), c0);
                j += 8;
            }
            // Scalar tail, still ascending `t` per lane.
            while j < n {
                let mut cj = *cp.add(j);
                for t in 0..nt {
                    cj += avs[t] * *ptrs[t].add(j);
                }
                *cp.add(j) = cj;
                j += 1;
            }
        }
    }

    /// [`mma_row_avx2`] at 512-bit width (2×zmm = 32-lane main blocks).
    /// Same bit-identity constraints: separate mul + add, ascending `t`.
    ///
    /// SAFETY (caller): avx512f enabled; pointer contract as in
    /// [`mma_row_avx2`].
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn mma_row_avx512(avs: &[f32], ptrs: &[*const f32], crow: &mut [f32]) {
        let n = crow.len();
        let cp = crow.as_mut_ptr();
        let nt = avs.len().min(ptrs.len());
        let mut j = 0;
        // SAFETY: as in mma_row_avx2.
        unsafe {
            while j + 32 <= n {
                let mut c0 = _mm512_loadu_ps(cp.add(j));
                let mut c1 = _mm512_loadu_ps(cp.add(j + 16));
                for t in 0..nt {
                    let av = _mm512_set1_ps(avs[t]);
                    let b0 = _mm512_loadu_ps(ptrs[t].add(j));
                    let b1 = _mm512_loadu_ps(ptrs[t].add(j + 16));
                    c0 = _mm512_add_ps(c0, _mm512_mul_ps(av, b0));
                    c1 = _mm512_add_ps(c1, _mm512_mul_ps(av, b1));
                }
                _mm512_storeu_ps(cp.add(j), c0);
                _mm512_storeu_ps(cp.add(j + 16), c1);
                j += 32;
            }
            while j + 16 <= n {
                let mut c0 = _mm512_loadu_ps(cp.add(j));
                for t in 0..nt {
                    let av = _mm512_set1_ps(avs[t]);
                    let b0 = _mm512_loadu_ps(ptrs[t].add(j));
                    c0 = _mm512_add_ps(c0, _mm512_mul_ps(av, b0));
                }
                _mm512_storeu_ps(cp.add(j), c0);
                j += 16;
            }
            while j < n {
                let mut cj = *cp.add(j);
                for t in 0..nt {
                    cj += avs[t] * *ptrs[t].add(j);
                }
                *cp.add(j) = cj;
                j += 1;
            }
        }
    }

    /// Whole 8×8×`n` tile update `c[i*n+j] += Σ_k a[i*8+k] * rows[k][j]`
    /// (AVX2), register-blocked 4 output rows × 16 columns: four
    /// independent accumulator chains hide the add latency that a
    /// one-row-at-a-time kernel serializes on (per lane the adds *must*
    /// stay in ascending `k`, so the only legal ILP is across rows and
    /// column chunks), and every B load is shared by all four rows.
    /// Separate `mul` + `add` — never `vfmadd` — and ascending-`k`
    /// per-lane order keep results bit-identical to the scalar core.
    /// `rows[k]` is dereferenced only under a nonzero A slot in column
    /// `k`, preserving the zero-skip (`0 × Inf` must never be formed)
    /// and letting callers pass null for all-zero columns.
    ///
    /// SAFETY (caller): avx2 enabled; `c.len() == 8 * n`; each
    /// `rows[k]` whose column has a nonzero A slot is valid for `n`
    /// reads and does not alias `c`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mma_tile_avx2(
        a: &[f32; 64],
        rows: &[*const f32; 8],
        c: &mut [f32],
        n: usize,
    ) {
        let cp = c.as_mut_ptr();
        // SAFETY: row bases `cp + (ib+r)*n` plus offsets `< n` stay
        // inside `c` (len `8*n`); B loads happen only under a nonzero
        // A slot, per the caller contract above.
        unsafe {
            for ib in (0..8).step_by(4) {
                let cr = [
                    cp.add(ib * n),
                    cp.add((ib + 1) * n),
                    cp.add((ib + 2) * n),
                    cp.add((ib + 3) * n),
                ];
                let mut j = 0;
                while j + 16 <= n {
                    let mut s00 = _mm256_loadu_ps(cr[0].add(j));
                    let mut s01 = _mm256_loadu_ps(cr[0].add(j + 8));
                    let mut s10 = _mm256_loadu_ps(cr[1].add(j));
                    let mut s11 = _mm256_loadu_ps(cr[1].add(j + 8));
                    let mut s20 = _mm256_loadu_ps(cr[2].add(j));
                    let mut s21 = _mm256_loadu_ps(cr[2].add(j + 8));
                    let mut s30 = _mm256_loadu_ps(cr[3].add(j));
                    let mut s31 = _mm256_loadu_ps(cr[3].add(j + 8));
                    for k in 0..8 {
                        let a0 = a[ib * 8 + k];
                        let a1 = a[(ib + 1) * 8 + k];
                        let a2 = a[(ib + 2) * 8 + k];
                        let a3 = a[(ib + 3) * 8 + k];
                        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                            continue;
                        }
                        let b0 = _mm256_loadu_ps(rows[k].add(j));
                        let b1 = _mm256_loadu_ps(rows[k].add(j + 8));
                        if a0 != 0.0 {
                            let av = _mm256_set1_ps(a0);
                            s00 = _mm256_add_ps(s00, _mm256_mul_ps(av, b0));
                            s01 = _mm256_add_ps(s01, _mm256_mul_ps(av, b1));
                        }
                        if a1 != 0.0 {
                            let av = _mm256_set1_ps(a1);
                            s10 = _mm256_add_ps(s10, _mm256_mul_ps(av, b0));
                            s11 = _mm256_add_ps(s11, _mm256_mul_ps(av, b1));
                        }
                        if a2 != 0.0 {
                            let av = _mm256_set1_ps(a2);
                            s20 = _mm256_add_ps(s20, _mm256_mul_ps(av, b0));
                            s21 = _mm256_add_ps(s21, _mm256_mul_ps(av, b1));
                        }
                        if a3 != 0.0 {
                            let av = _mm256_set1_ps(a3);
                            s30 = _mm256_add_ps(s30, _mm256_mul_ps(av, b0));
                            s31 = _mm256_add_ps(s31, _mm256_mul_ps(av, b1));
                        }
                    }
                    _mm256_storeu_ps(cr[0].add(j), s00);
                    _mm256_storeu_ps(cr[0].add(j + 8), s01);
                    _mm256_storeu_ps(cr[1].add(j), s10);
                    _mm256_storeu_ps(cr[1].add(j + 8), s11);
                    _mm256_storeu_ps(cr[2].add(j), s20);
                    _mm256_storeu_ps(cr[2].add(j + 8), s21);
                    _mm256_storeu_ps(cr[3].add(j), s30);
                    _mm256_storeu_ps(cr[3].add(j + 8), s31);
                    j += 16;
                }
                while j + 8 <= n {
                    let mut s0 = _mm256_loadu_ps(cr[0].add(j));
                    let mut s1 = _mm256_loadu_ps(cr[1].add(j));
                    let mut s2 = _mm256_loadu_ps(cr[2].add(j));
                    let mut s3 = _mm256_loadu_ps(cr[3].add(j));
                    for k in 0..8 {
                        let a0 = a[ib * 8 + k];
                        let a1 = a[(ib + 1) * 8 + k];
                        let a2 = a[(ib + 2) * 8 + k];
                        let a3 = a[(ib + 3) * 8 + k];
                        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                            continue;
                        }
                        let b0 = _mm256_loadu_ps(rows[k].add(j));
                        if a0 != 0.0 {
                            s0 = _mm256_add_ps(s0, _mm256_mul_ps(_mm256_set1_ps(a0), b0));
                        }
                        if a1 != 0.0 {
                            s1 = _mm256_add_ps(s1, _mm256_mul_ps(_mm256_set1_ps(a1), b0));
                        }
                        if a2 != 0.0 {
                            s2 = _mm256_add_ps(s2, _mm256_mul_ps(_mm256_set1_ps(a2), b0));
                        }
                        if a3 != 0.0 {
                            s3 = _mm256_add_ps(s3, _mm256_mul_ps(_mm256_set1_ps(a3), b0));
                        }
                    }
                    _mm256_storeu_ps(cr[0].add(j), s0);
                    _mm256_storeu_ps(cr[1].add(j), s1);
                    _mm256_storeu_ps(cr[2].add(j), s2);
                    _mm256_storeu_ps(cr[3].add(j), s3);
                    j += 8;
                }
                // Scalar tail: per lane still ascending `k` with the
                // zero-skip, identical to the scalar kernel.
                while j < n {
                    for (r, &crp) in cr.iter().enumerate() {
                        let mut cj = *crp.add(j);
                        for k in 0..8 {
                            let av = a[(ib + r) * 8 + k];
                            if av != 0.0 {
                                cj += av * *rows[k].add(j);
                            }
                        }
                        *crp.add(j) = cj;
                    }
                    j += 1;
                }
            }
        }
    }

    /// [`mma_tile_avx2`] at 512-bit width: 4 output rows × 32 columns
    /// (2×zmm per row). Same bit-identity constraints — separate
    /// mul + add, ascending `k` per lane, B rows touched only under a
    /// nonzero A slot.
    ///
    /// SAFETY (caller): avx512f enabled; contract as in
    /// [`mma_tile_avx2`].
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn mma_tile_avx512(
        a: &[f32; 64],
        rows: &[*const f32; 8],
        c: &mut [f32],
        n: usize,
    ) {
        let cp = c.as_mut_ptr();
        // SAFETY: as in mma_tile_avx2.
        unsafe {
            for ib in (0..8).step_by(4) {
                let cr = [
                    cp.add(ib * n),
                    cp.add((ib + 1) * n),
                    cp.add((ib + 2) * n),
                    cp.add((ib + 3) * n),
                ];
                let mut j = 0;
                while j + 32 <= n {
                    let mut s00 = _mm512_loadu_ps(cr[0].add(j));
                    let mut s01 = _mm512_loadu_ps(cr[0].add(j + 16));
                    let mut s10 = _mm512_loadu_ps(cr[1].add(j));
                    let mut s11 = _mm512_loadu_ps(cr[1].add(j + 16));
                    let mut s20 = _mm512_loadu_ps(cr[2].add(j));
                    let mut s21 = _mm512_loadu_ps(cr[2].add(j + 16));
                    let mut s30 = _mm512_loadu_ps(cr[3].add(j));
                    let mut s31 = _mm512_loadu_ps(cr[3].add(j + 16));
                    for k in 0..8 {
                        let a0 = a[ib * 8 + k];
                        let a1 = a[(ib + 1) * 8 + k];
                        let a2 = a[(ib + 2) * 8 + k];
                        let a3 = a[(ib + 3) * 8 + k];
                        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                            continue;
                        }
                        let b0 = _mm512_loadu_ps(rows[k].add(j));
                        let b1 = _mm512_loadu_ps(rows[k].add(j + 16));
                        if a0 != 0.0 {
                            let av = _mm512_set1_ps(a0);
                            s00 = _mm512_add_ps(s00, _mm512_mul_ps(av, b0));
                            s01 = _mm512_add_ps(s01, _mm512_mul_ps(av, b1));
                        }
                        if a1 != 0.0 {
                            let av = _mm512_set1_ps(a1);
                            s10 = _mm512_add_ps(s10, _mm512_mul_ps(av, b0));
                            s11 = _mm512_add_ps(s11, _mm512_mul_ps(av, b1));
                        }
                        if a2 != 0.0 {
                            let av = _mm512_set1_ps(a2);
                            s20 = _mm512_add_ps(s20, _mm512_mul_ps(av, b0));
                            s21 = _mm512_add_ps(s21, _mm512_mul_ps(av, b1));
                        }
                        if a3 != 0.0 {
                            let av = _mm512_set1_ps(a3);
                            s30 = _mm512_add_ps(s30, _mm512_mul_ps(av, b0));
                            s31 = _mm512_add_ps(s31, _mm512_mul_ps(av, b1));
                        }
                    }
                    _mm512_storeu_ps(cr[0].add(j), s00);
                    _mm512_storeu_ps(cr[0].add(j + 16), s01);
                    _mm512_storeu_ps(cr[1].add(j), s10);
                    _mm512_storeu_ps(cr[1].add(j + 16), s11);
                    _mm512_storeu_ps(cr[2].add(j), s20);
                    _mm512_storeu_ps(cr[2].add(j + 16), s21);
                    _mm512_storeu_ps(cr[3].add(j), s30);
                    _mm512_storeu_ps(cr[3].add(j + 16), s31);
                    j += 32;
                }
                while j + 16 <= n {
                    let mut s0 = _mm512_loadu_ps(cr[0].add(j));
                    let mut s1 = _mm512_loadu_ps(cr[1].add(j));
                    let mut s2 = _mm512_loadu_ps(cr[2].add(j));
                    let mut s3 = _mm512_loadu_ps(cr[3].add(j));
                    for k in 0..8 {
                        let a0 = a[ib * 8 + k];
                        let a1 = a[(ib + 1) * 8 + k];
                        let a2 = a[(ib + 2) * 8 + k];
                        let a3 = a[(ib + 3) * 8 + k];
                        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                            continue;
                        }
                        let b0 = _mm512_loadu_ps(rows[k].add(j));
                        if a0 != 0.0 {
                            s0 = _mm512_add_ps(s0, _mm512_mul_ps(_mm512_set1_ps(a0), b0));
                        }
                        if a1 != 0.0 {
                            s1 = _mm512_add_ps(s1, _mm512_mul_ps(_mm512_set1_ps(a1), b0));
                        }
                        if a2 != 0.0 {
                            s2 = _mm512_add_ps(s2, _mm512_mul_ps(_mm512_set1_ps(a2), b0));
                        }
                        if a3 != 0.0 {
                            s3 = _mm512_add_ps(s3, _mm512_mul_ps(_mm512_set1_ps(a3), b0));
                        }
                    }
                    _mm512_storeu_ps(cr[0].add(j), s0);
                    _mm512_storeu_ps(cr[1].add(j), s1);
                    _mm512_storeu_ps(cr[2].add(j), s2);
                    _mm512_storeu_ps(cr[3].add(j), s3);
                    j += 16;
                }
                // Sub-zmm widths go through the AVX2 kernel shape: on
                // any avx512f host avx2 is present too, and the 8-lane
                // blocks beat a masked-zmm tail for the short-n case.
                if j < n {
                    while j + 8 <= n {
                        let mut s0 = _mm256_loadu_ps(cr[0].add(j));
                        let mut s1 = _mm256_loadu_ps(cr[1].add(j));
                        let mut s2 = _mm256_loadu_ps(cr[2].add(j));
                        let mut s3 = _mm256_loadu_ps(cr[3].add(j));
                        for k in 0..8 {
                            let a0 = a[ib * 8 + k];
                            let a1 = a[(ib + 1) * 8 + k];
                            let a2 = a[(ib + 2) * 8 + k];
                            let a3 = a[(ib + 3) * 8 + k];
                            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                                continue;
                            }
                            let b0 = _mm256_loadu_ps(rows[k].add(j));
                            if a0 != 0.0 {
                                s0 = _mm256_add_ps(s0, _mm256_mul_ps(_mm256_set1_ps(a0), b0));
                            }
                            if a1 != 0.0 {
                                s1 = _mm256_add_ps(s1, _mm256_mul_ps(_mm256_set1_ps(a1), b0));
                            }
                            if a2 != 0.0 {
                                s2 = _mm256_add_ps(s2, _mm256_mul_ps(_mm256_set1_ps(a2), b0));
                            }
                            if a3 != 0.0 {
                                s3 = _mm256_add_ps(s3, _mm256_mul_ps(_mm256_set1_ps(a3), b0));
                            }
                        }
                        _mm256_storeu_ps(cr[0].add(j), s0);
                        _mm256_storeu_ps(cr[1].add(j), s1);
                        _mm256_storeu_ps(cr[2].add(j), s2);
                        _mm256_storeu_ps(cr[3].add(j), s3);
                        j += 8;
                    }
                    while j < n {
                        for (r, &crp) in cr.iter().enumerate() {
                            let mut cj = *crp.add(j);
                            for k in 0..8 {
                                let av = a[(ib + r) * 8 + k];
                                if av != 0.0 {
                                    cj += av * *rows[k].add(j);
                                }
                            }
                            *crp.add(j) = cj;
                        }
                        j += 1;
                    }
                }
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON kernels, mirroring the AVX2 shapes at 4 lanes. Same
    //! bit-identity rules: separate `vmulq`/`vaddq` (never `vfmaq`),
    //! ascending-`k` per-lane order, scalar tails.

    use super::EXP_MASK;
    use crate::scalar::to_tf32;
    use core::arch::aarch64::*;

    /// SAFETY (caller): neon enabled; `src`/`dst` valid for `n`,
    /// identical or disjoint.
    #[target_feature(enable = "neon")]
    unsafe fn tf32_round_ptr_neon(src: *const f32, dst: *mut f32, n: usize) {
        let mut i = 0;
        // SAFETY: lane offsets `< n`; exact aliasing reads each lane
        // before writing it.
        unsafe {
            let exp = vdupq_n_u32(EXP_MASK);
            let keep = vdupq_n_u32(!0x1FFFu32);
            let half_minus_1 = vdupq_n_u32(0x0FFF);
            let one = vdupq_n_u32(1);
            while i + 4 <= n {
                let v = vreinterpretq_u32_f32(vld1q_f32(src.add(i)));
                let keep_lsb = vandq_u32(vshrq_n_u32::<13>(v), one);
                let bump = vaddq_u32(half_minus_1, keep_lsb);
                let rounded = vandq_u32(vaddq_u32(v, bump), keep);
                let is_special = vceqq_u32(vandq_u32(v, exp), exp);
                let out = vbslq_u32(is_special, v, rounded);
                vst1q_f32(dst.add(i), vreinterpretq_f32_u32(out));
                i += 4;
            }
            while i < n {
                *dst.add(i) = to_tf32(*src.add(i));
                i += 1;
            }
        }
    }

    /// SAFETY (caller): neon enabled.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn to_tf32_inplace_neon(xs: &mut [f32]) {
        // SAFETY: exact aliasing is the supported in-place mode.
        unsafe { tf32_round_ptr_neon(xs.as_ptr(), xs.as_mut_ptr(), xs.len()) }
    }

    /// SAFETY (caller): neon enabled; `src.len() == dst.len()`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn to_tf32_into_neon(src: &[f32], dst: &mut [f32]) {
        let n = src.len().min(dst.len());
        // SAFETY: `n` floats valid on both sides.
        unsafe { tf32_round_ptr_neon(src.as_ptr(), dst.as_mut_ptr(), n) }
    }

    /// One C-row update (NEON): 8-lane (2×q) main blocks, then 4, then
    /// scalar tail. Separate mul + add, ascending `t` per lane.
    ///
    /// SAFETY (caller): neon enabled; every `ptrs[t]` valid for
    /// `crow.len()` reads, none aliasing `crow`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn mma_row_neon(avs: &[f32], ptrs: &[*const f32], crow: &mut [f32]) {
        let n = crow.len();
        let cp = crow.as_mut_ptr();
        let nt = avs.len().min(ptrs.len());
        let mut j = 0;
        // SAFETY: offsets `< n`; `cp` sole mutable pointer.
        unsafe {
            while j + 8 <= n {
                let mut c0 = vld1q_f32(cp.add(j));
                let mut c1 = vld1q_f32(cp.add(j + 4));
                for t in 0..nt {
                    let av = vdupq_n_f32(avs[t]);
                    let b0 = vld1q_f32(ptrs[t].add(j));
                    let b1 = vld1q_f32(ptrs[t].add(j + 4));
                    c0 = vaddq_f32(c0, vmulq_f32(av, b0));
                    c1 = vaddq_f32(c1, vmulq_f32(av, b1));
                }
                vst1q_f32(cp.add(j), c0);
                vst1q_f32(cp.add(j + 4), c1);
                j += 8;
            }
            while j + 4 <= n {
                let mut c0 = vld1q_f32(cp.add(j));
                for t in 0..nt {
                    let av = vdupq_n_f32(avs[t]);
                    let b0 = vld1q_f32(ptrs[t].add(j));
                    c0 = vaddq_f32(c0, vmulq_f32(av, b0));
                }
                vst1q_f32(cp.add(j), c0);
                j += 4;
            }
            while j < n {
                let mut cj = *cp.add(j);
                for t in 0..nt {
                    cj += avs[t] * *ptrs[t].add(j);
                }
                *cp.add(j) = cj;
                j += 1;
            }
        }
    }

    /// Whole 8×8×`n` tile update (NEON), register-blocked 4 output rows
    /// × 8 columns (2×q per row) — see `x86::mma_tile_avx2` for the
    /// ILP rationale and the bit-identity constraints (separate
    /// mul + add, ascending `k` per lane, B rows touched only under a
    /// nonzero A slot so null pointers for all-zero columns are fine).
    ///
    /// SAFETY (caller): neon enabled; `c.len() == 8 * n`; each
    /// `rows[k]` whose column has a nonzero A slot is valid for `n`
    /// reads and does not alias `c`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn mma_tile_neon(
        a: &[f32; 64],
        rows: &[*const f32; 8],
        c: &mut [f32],
        n: usize,
    ) {
        let cp = c.as_mut_ptr();
        // SAFETY: row bases plus offsets `< n` stay inside `c`; B loads
        // only under a nonzero A slot.
        unsafe {
            for ib in (0..8).step_by(4) {
                let cr = [
                    cp.add(ib * n),
                    cp.add((ib + 1) * n),
                    cp.add((ib + 2) * n),
                    cp.add((ib + 3) * n),
                ];
                let mut j = 0;
                while j + 8 <= n {
                    let mut s00 = vld1q_f32(cr[0].add(j));
                    let mut s01 = vld1q_f32(cr[0].add(j + 4));
                    let mut s10 = vld1q_f32(cr[1].add(j));
                    let mut s11 = vld1q_f32(cr[1].add(j + 4));
                    let mut s20 = vld1q_f32(cr[2].add(j));
                    let mut s21 = vld1q_f32(cr[2].add(j + 4));
                    let mut s30 = vld1q_f32(cr[3].add(j));
                    let mut s31 = vld1q_f32(cr[3].add(j + 4));
                    for k in 0..8 {
                        let a0 = a[ib * 8 + k];
                        let a1 = a[(ib + 1) * 8 + k];
                        let a2 = a[(ib + 2) * 8 + k];
                        let a3 = a[(ib + 3) * 8 + k];
                        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                            continue;
                        }
                        let b0 = vld1q_f32(rows[k].add(j));
                        let b1 = vld1q_f32(rows[k].add(j + 4));
                        if a0 != 0.0 {
                            let av = vdupq_n_f32(a0);
                            s00 = vaddq_f32(s00, vmulq_f32(av, b0));
                            s01 = vaddq_f32(s01, vmulq_f32(av, b1));
                        }
                        if a1 != 0.0 {
                            let av = vdupq_n_f32(a1);
                            s10 = vaddq_f32(s10, vmulq_f32(av, b0));
                            s11 = vaddq_f32(s11, vmulq_f32(av, b1));
                        }
                        if a2 != 0.0 {
                            let av = vdupq_n_f32(a2);
                            s20 = vaddq_f32(s20, vmulq_f32(av, b0));
                            s21 = vaddq_f32(s21, vmulq_f32(av, b1));
                        }
                        if a3 != 0.0 {
                            let av = vdupq_n_f32(a3);
                            s30 = vaddq_f32(s30, vmulq_f32(av, b0));
                            s31 = vaddq_f32(s31, vmulq_f32(av, b1));
                        }
                    }
                    vst1q_f32(cr[0].add(j), s00);
                    vst1q_f32(cr[0].add(j + 4), s01);
                    vst1q_f32(cr[1].add(j), s10);
                    vst1q_f32(cr[1].add(j + 4), s11);
                    vst1q_f32(cr[2].add(j), s20);
                    vst1q_f32(cr[2].add(j + 4), s21);
                    vst1q_f32(cr[3].add(j), s30);
                    vst1q_f32(cr[3].add(j + 4), s31);
                    j += 8;
                }
                while j + 4 <= n {
                    let mut s0 = vld1q_f32(cr[0].add(j));
                    let mut s1 = vld1q_f32(cr[1].add(j));
                    let mut s2 = vld1q_f32(cr[2].add(j));
                    let mut s3 = vld1q_f32(cr[3].add(j));
                    for k in 0..8 {
                        let a0 = a[ib * 8 + k];
                        let a1 = a[(ib + 1) * 8 + k];
                        let a2 = a[(ib + 2) * 8 + k];
                        let a3 = a[(ib + 3) * 8 + k];
                        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                            continue;
                        }
                        let b0 = vld1q_f32(rows[k].add(j));
                        if a0 != 0.0 {
                            s0 = vaddq_f32(s0, vmulq_f32(vdupq_n_f32(a0), b0));
                        }
                        if a1 != 0.0 {
                            s1 = vaddq_f32(s1, vmulq_f32(vdupq_n_f32(a1), b0));
                        }
                        if a2 != 0.0 {
                            s2 = vaddq_f32(s2, vmulq_f32(vdupq_n_f32(a2), b0));
                        }
                        if a3 != 0.0 {
                            s3 = vaddq_f32(s3, vmulq_f32(vdupq_n_f32(a3), b0));
                        }
                    }
                    vst1q_f32(cr[0].add(j), s0);
                    vst1q_f32(cr[1].add(j), s1);
                    vst1q_f32(cr[2].add(j), s2);
                    vst1q_f32(cr[3].add(j), s3);
                    j += 4;
                }
                while j < n {
                    for (r, &crp) in cr.iter().enumerate() {
                        let mut cj = *crp.add(j);
                        for k in 0..8 {
                            let av = a[(ib + r) * 8 + k];
                            if av != 0.0 {
                                cj += av * *rows[k].add(j);
                            }
                        }
                        *crp.add(j) = cj;
                    }
                    j += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::splitmix64;

    /// NaN-position-exact bitwise comparison (payloads of competing
    /// NaNs are unspecified; coordinates must match).
    fn same(x: f32, y: f32) -> bool {
        x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
    }

    fn specials() -> [f32; 7] {
        [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
            1.0e-41,                     // subnormal
            f32::from_bits(0x3F80_3000), // rounds up across the boundary
            f32::from_bits(0x0000_0001), // smallest subnormal
        ]
    }

    fn messy(seed: u64, len: usize) -> Vec<f32> {
        let sp = specials();
        (0..len)
            .map(|t| {
                let r = splitmix64(seed ^ t as u64) as u32;
                match r % 5 {
                    0 => 0.0,
                    1 => sp[(r as usize / 5) % sp.len()],
                    _ => f32::from_bits(r),
                }
            })
            .collect()
    }

    fn available_tiers() -> Vec<IsaTier> {
        IsaTier::ALL
            .into_iter()
            .filter(|t| {
                let ok = t.is_available();
                if !ok {
                    eprintln!("simd tests: tier '{t}' unavailable on this host, skipping");
                }
                ok
            })
            .collect()
    }

    #[test]
    fn codes_and_names_round_trip() {
        for t in IsaTier::ALL {
            assert_eq!(IsaTier::from_code(t.code()), Some(t));
            assert_eq!(IsaTier::from_name(t.name()), Some(t));
            assert_eq!(format!("{t}"), t.name());
        }
        assert_eq!(IsaTier::from_name("AVX512F"), Some(IsaTier::Avx512f));
        assert_eq!(IsaTier::from_name("bogus"), None);
        assert_eq!(IsaTier::from_code(9), None);
    }

    #[test]
    fn lanes_are_monotone_in_width() {
        assert_eq!(IsaTier::Scalar.simd_lanes(), 1);
        assert_eq!(IsaTier::Neon.simd_lanes(), 4);
        assert_eq!(IsaTier::Avx2Fma.simd_lanes(), 8);
        assert_eq!(IsaTier::Avx512f.simd_lanes(), 16);
    }

    #[test]
    fn scalar_always_available_and_best_is_available() {
        assert!(IsaTier::Scalar.is_available());
        assert!(IsaTier::detect_best().is_available());
        assert!(IsaTier::probe().is_available());
    }

    #[test]
    fn resolve_pins_and_rejects() {
        assert_eq!(
            IsaTier::resolve(Some(IsaTier::Scalar)).unwrap(),
            IsaTier::Scalar
        );
        assert!(IsaTier::resolve(None).unwrap().is_available());
        // Some tier is always unavailable on any given host (Neon on
        // x86, the AVX tiers elsewhere).
        if let Some(missing) = IsaTier::ALL.into_iter().find(|t| !t.is_available()) {
            let err = IsaTier::resolve(Some(missing)).unwrap_err();
            assert!(err.to_string().contains(missing.name()), "{err}");
        }
    }

    #[test]
    fn rounding_matches_scalar_on_every_tier() {
        let src = messy(0xF00D, 1031); // odd length exercises every tail
        for tier in available_tiers() {
            let mut want = src.clone();
            to_tf32_slice(&mut want);

            let mut inplace = src.clone();
            to_tf32_slice_tier(&mut inplace, tier);
            let mut into = vec![0.0f32; src.len()];
            to_tf32_slice_into_tier(&src, &mut into, tier);

            for i in 0..src.len() {
                assert_eq!(
                    inplace[i].to_bits(),
                    want[i].to_bits(),
                    "tier {tier} in-place elem {i}"
                );
                assert_eq!(
                    into[i].to_bits(),
                    want[i].to_bits(),
                    "tier {tier} into elem {i}"
                );
            }
        }
    }

    #[test]
    fn mma_prerounded_bit_identical_on_every_tier() {
        for n in [1usize, 3, 7, 8, 15, 16, 17, 31, 32, 33, 64, 100] {
            let mut a_raw = [0.0f32; 64];
            for (t, slot) in a_raw.iter_mut().enumerate() {
                *slot = messy(77, 64)[t];
            }
            let mut a = a_raw;
            to_tf32_slice(&mut a);
            let mut b = messy(0xBEEF ^ n as u64, 8 * n);
            to_tf32_slice(&mut b);

            let mut want = vec![0.25f32; 8 * n];
            tf32_mma_8x8_prerounded(&a, &b, &mut want, n);

            for tier in available_tiers() {
                let mut got = vec![0.25f32; 8 * n];
                mma_8x8_prerounded_tier(&a, &b, &mut got, n, tier);
                for j in 0..8 * n {
                    assert!(
                        same(got[j], want[j]),
                        "tier {tier} n={n} elem {j}: {:#010X} vs {:#010X}",
                        got[j].to_bits(),
                        want[j].to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn mma_rows_bit_identical_with_empty_zero_columns() {
        for n in [1usize, 5, 16, 33, 64] {
            let mut a = [0.0f32; 64];
            for (t, slot) in a.iter_mut().enumerate() {
                let r = splitmix64(0xA11 ^ t as u64) as u32;
                *slot = match r % 3 {
                    0 => 0.0,
                    _ => f32::from_bits(r),
                };
            }
            // Zero out one whole A column so its row may legally be empty.
            for i in 0..8 {
                a[i * 8 + 3] = 0.0;
            }
            to_tf32_slice(&mut a);
            let mut b = messy(0xCAFE ^ n as u64, 8 * n);
            to_tf32_slice(&mut b);
            let rows: [&[f32]; 8] = std::array::from_fn(|k| {
                if k == 3 {
                    &[][..]
                } else {
                    &b[k * n..(k + 1) * n]
                }
            });

            let mut want = vec![1.5f32; 8 * n];
            tf32_mma_8x8_rows(&a, &rows, &mut want, n);

            for tier in available_tiers() {
                let mut got = vec![1.5f32; 8 * n];
                mma_8x8_rows_tier(&a, &rows, &mut got, n, tier);
                for j in 0..8 * n {
                    assert!(
                        same(got[j], want[j]),
                        "tier {tier} n={n} elem {j}: {:#010X} vs {:#010X}",
                        got[j].to_bits(),
                        want[j].to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn axpy_has_no_zero_skip_and_matches_scalar() {
        for n in [1usize, 4, 9, 16, 27, 64] {
            let b = messy(0x5EED ^ n as u64, n);
            for v in [0.0f32, -0.0, 2.5, f32::NAN, f32::INFINITY] {
                let mut want = vec![0.75f32; n];
                for (cj, &bj) in want.iter_mut().zip(b.iter()) {
                    *cj += v * bj;
                }
                for tier in available_tiers() {
                    let mut got = vec![0.75f32; n];
                    axpy_tier(v, &b, &mut got, tier);
                    for j in 0..n {
                        assert!(
                            same(got[j], want[j]),
                            "tier {tier} v={v} n={n} elem {j}: {:#010X} vs {:#010X}",
                            got[j].to_bits(),
                            want[j].to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unavailable_tier_falls_back_to_scalar_bit_identically() {
        // Calling a wrapper with an unavailable tier (e.g. a tier read
        // from a foreign plan artifact) must fall back, not crash.
        let missing = IsaTier::ALL.into_iter().find(|t| !t.is_available());
        let Some(tier) = missing else { return };
        let src = messy(9, 100);
        let mut got = vec![0.0f32; 100];
        to_tf32_slice_into_tier(&src, &mut got, tier);
        let mut want = src.clone();
        to_tf32_slice(&mut want);
        for i in 0..100 {
            assert!(same(got[i], want[i]), "elem {i}");
        }
    }
}
