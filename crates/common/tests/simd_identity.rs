//! Property matrix: forced ISA tier × SIMD entry point, bit-identity
//! against the scalar reference.
//!
//! Every available tier must produce *bitwise* identical results to the
//! scalar core on every operation — including NaN positions,
//! infinities, subnormals, and negative zero, which the generators
//! splice in deliberately. (NaN *payloads* are compared position-only;
//! see `assert_same_bits`.) Tiers the host lacks are skipped
//! with a log line, never silently: the suite exercises whatever the
//! machine offers (CI forces `SPMM_FORCE_ISA=scalar` in one job, and
//! x86 runners cover AVX2/AVX-512).

use proptest::prelude::*;
use spmm_common::scalar;
use spmm_common::simd::{
    mma_8x8_prerounded_tier, mma_8x8_rows_tier, to_tf32_slice_into_tier, to_tf32_slice_tier,
};
use spmm_common::IsaTier;

/// Tiers runnable on this host, logging every skip.
fn available_tiers() -> Vec<IsaTier> {
    IsaTier::ALL
        .into_iter()
        .filter(|t| {
            let ok = t.is_available();
            if !ok {
                eprintln!("simd_identity: skipping tier '{t}' (not available on this host)");
            }
            ok
        })
        .collect()
}

/// Values that stress the rounding passthrough and the zero-skip:
/// quiet NaN, both infinities, negative zero, subnormals (including the
/// smallest), a value exactly on the round-to-even boundary, and the
/// largest finite f32.
const SPECIALS: [u32; 8] = [
    0x7FC0_0000, // quiet NaN
    0x7F80_0000, // +Inf
    0xFF80_0000, // -Inf
    0x8000_0000, // -0.0
    0x0000_0001, // smallest subnormal
    0x0001_2345, // subnormal
    0x3F80_3000, // halfway case for TF32 round-to-nearest-even
    0x7F7F_FFFF, // f32::MAX
];

/// Deterministic messy data: mostly ordinary values, specials spliced
/// roughly every sixth slot, exact zeros (the MMA skip path) every
/// eleventh.
fn messy(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed | 1;
    (0..len)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if i % 11 == 3 {
                0.0
            } else if i % 6 == 1 {
                f32::from_bits(SPECIALS[(state >> 33) as usize % SPECIALS.len()])
            } else {
                f32::from_bits(0x3000_0000 | (state >> 40) as u32)
            }
        })
        .collect()
}

/// NaN-position-exact comparison: bitwise equal everywhere, except that
/// NaN lanes match any NaN. Payloads of *arithmetic* NaNs are
/// unspecified by LLVM (operand order of a float add is free to flip,
/// and x86 propagates the first source's payload), so demanding payload
/// equality between separately-compiled code would be unsound — the
/// scalar reference itself doesn't promise it across builds.
fn assert_same_bits(expected: &[f32], got: &[f32], what: &str, tier: IsaTier) {
    assert_eq!(expected.len(), got.len());
    for (i, (e, g)) in expected.iter().zip(got.iter()).enumerate() {
        assert!(
            e.to_bits() == g.to_bits() || (e.is_nan() && g.is_nan()),
            "{what} on tier '{tier}' diverges at {i}: {e:?} ({:#010x}) vs {g:?} ({:#010x})",
            e.to_bits(),
            g.to_bits()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn to_tf32_slice_matches_scalar_on_every_tier(
        seed in any::<u64>(),
        len in 1usize..600,
    ) {
        let src = messy(seed, len);
        let mut reference = src.clone();
        scalar::to_tf32_slice(&mut reference);
        for tier in available_tiers() {
            let mut inplace = src.clone();
            to_tf32_slice_tier(&mut inplace, tier);
            assert_same_bits(&reference, &inplace, "to_tf32_slice", tier);

            let mut into = vec![0.0f32; len];
            to_tf32_slice_into_tier(&src, &mut into, tier);
            assert_same_bits(&reference, &into, "to_tf32_slice_into", tier);
        }
    }

    #[test]
    fn mma_prerounded_matches_scalar_on_every_tier(
        seed in any::<u64>(),
        n in 1usize..130,
    ) {
        let mut a = [0.0f32; 64];
        for (i, v) in messy(seed, 64).into_iter().enumerate() {
            a[i] = scalar::to_tf32(v);
        }
        let mut b = messy(seed.wrapping_add(1), 8 * n);
        scalar::to_tf32_slice(&mut b);
        let c0 = messy(seed.wrapping_add(2), 8 * n);

        let mut reference = c0.clone();
        scalar::tf32_mma_8x8_prerounded(&a, &b, &mut reference, n);
        for tier in available_tiers() {
            let mut c = c0.clone();
            mma_8x8_prerounded_tier(&a, &b, &mut c, n, tier);
            assert_same_bits(&reference, &c, "mma_8x8_prerounded", tier);
        }
    }

    #[test]
    fn mma_rows_matches_scalar_on_every_tier(
        seed in any::<u64>(),
        n in 1usize..130,
    ) {
        let mut a = [0.0f32; 64];
        for (i, v) in messy(seed, 64).into_iter().enumerate() {
            a[i] = scalar::to_tf32(v);
        }
        // Zero out two whole A columns so their B rows are legitimately
        // empty slices — the zero-skip is what makes that sound, and
        // what this case pins down across tiers.
        for i in 0..8 {
            a[i * 8 + 2] = 0.0;
            a[i * 8 + 5] = 0.0;
        }
        let mut bdata = messy(seed.wrapping_add(3), 8 * n);
        scalar::to_tf32_slice(&mut bdata);
        let empty: [f32; 0] = [];
        let rows: [&[f32]; 8] = std::array::from_fn(|k| {
            if k == 2 || k == 5 {
                &empty[..]
            } else {
                &bdata[k * n..(k + 1) * n]
            }
        });
        let c0 = messy(seed.wrapping_add(4), 8 * n);

        let mut reference = c0.clone();
        scalar::tf32_mma_8x8_rows(&a, &rows, &mut reference, n);
        for tier in available_tiers() {
            let mut c = c0.clone();
            mma_8x8_rows_tier(&a, &rows, &mut c, n, tier);
            assert_same_bits(&reference, &c, "mma_8x8_rows", tier);
        }
    }
}
