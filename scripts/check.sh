#!/usr/bin/env bash
# Offline gate: build, tests, formatting, lints, docs.
#
#   scripts/check.sh            full gate (build, test, fmt, clippy, doc)
#   scripts/check.sh --quick    build + test only (the fast inner loop)
#
# The workspace has no network dependencies — every external crate is an
# API-compatible path shim under shims/ — so this script must pass on a
# machine with no registry access. Run the full gate before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

if [[ "$QUICK" == "1" ]]; then
  # Explicit re-assert of the sharded-execution and dynamic-graph unit
  # tests (cheap; the binaries are already built) so a trimmed-down
  # quick loop that edits the workspace test filter still exercises
  # spmm-dist and spmm-delta.
  echo "==> cargo test -p spmm-dist"
  cargo test -q -p spmm-dist
  echo "==> cargo test -p spmm-delta"
  cargo test -q -p spmm-delta
  echo "Quick checks passed (build + test)."
  exit 0
fi

echo "==> planc smoke (compile + reload + execute one persisted plan)"
PLANC_DIR="$(mktemp -d)"
trap 'rm -rf "$PLANC_DIR"' EXIT
cargo run --release -q -p spmm-bench --bin planc -- --smoke "$PLANC_DIR"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "All checks passed."
