#!/usr/bin/env bash
# Full offline gate: build, tests, formatting, lints.
#
# The workspace has no network dependencies — every external crate is an
# API-compatible path shim under shims/ — so this script must pass on a
# machine with no registry access. Run it before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
