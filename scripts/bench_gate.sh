#!/usr/bin/env bash
# Performance regression gate over the perfsuite artifact.
#
#   scripts/bench_gate.sh                      gate BENCH_perfsuite.json against
#                                              results/bench_baseline.json,
#                                              running `perfsuite --quick` first
#                                              if the candidate is missing
#   scripts/bench_gate.sh path/to/suite.json   gate an explicit artifact
#   scripts/bench_gate.sh --update-baseline    re-measure and refresh the
#                                              checked-in baseline
#
# Fails (non-zero exit) when any kernel's median wall time regressed by
# more than BENCH_GATE_THRESHOLD (default 0.25 = 25%) relative to the
# baseline, when the multi-client engine scenario is missing from the
# candidate, when its results are not bit-identical to the direct path,
# or when its speedup falls below the conservative 1.2x floor. The
# sharded (spmm-dist) scenario is gated the same way: it must be
# present, bit-identical to single-node execution, and show >= 1.5x
# critical-path speedup at 4 shards. The warm-start scenario must show
# a restarted engine opening its first session >= 3x faster from the
# persisted-plan store than from a cold build, with bit-identical
# outputs. The QoS storm scenario must keep interactive p99 completion
# latency under its ceiling, execute zero expired requests, never
# exceed the engine's page budget, and stay bit-identical to the
# direct path. The dynamic-graph streaming scenario must keep
# incremental plan repair bit-identical to a full rebuild (single-node
# and sharded) and at least 1.5x faster per ~1% churn step. Wall times
# are machine-dependent:
# refresh the baseline with --update-baseline when moving to different
# hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

BASELINE=results/bench_baseline.json
THRESHOLD=${BENCH_GATE_THRESHOLD:-0.25}
# Must match SCHEMA_VERSION in crates/bench/src/bin/perfsuite.rs.
EXPECTED_SCHEMA=4

# One clear line on a stale or foreign artifact instead of a parser
# error from deep inside the gate.
check_schema() {
  local file=$1 found
  found=$(grep -o '"schema_version": *[0-9]*' "$file" | head -1 | grep -o '[0-9]*$' || true)
  if [[ "${found:-}" != "$EXPECTED_SCHEMA" ]]; then
    echo "bench gate: $file has schema_version ${found:-<missing>}, expected $EXPECTED_SCHEMA (baseline stale? refresh with scripts/bench_gate.sh --update-baseline)" >&2
    exit 2
  fi
}

if [[ "${1:-}" == "--update-baseline" ]]; then
  cargo run --release -p spmm-bench --bin perfsuite -- --quick --out "$BASELINE"
  echo "baseline refreshed: $BASELINE"
  exit 0
fi

CANDIDATE=${1:-BENCH_perfsuite.json}
if [[ ! -f "$CANDIDATE" ]]; then
  echo "==> no $CANDIDATE yet; running perfsuite --quick"
  cargo run --release -p spmm-bench --bin perfsuite -- --quick --out "$CANDIDATE"
fi

check_schema "$BASELINE"
check_schema "$CANDIDATE"

cargo run --release -p spmm-bench --bin perfsuite -- \
  --gate "$BASELINE" "$CANDIDATE" --threshold "$THRESHOLD"
